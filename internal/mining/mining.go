// Package mining implements the §5.2 tool: generating classification rules
// from labeled data. The pipeline is exactly the paper's — frequent token
// sequences mined with AprioriAll [4] over each type's titles, one candidate
// rule a1.*a2.*…*an → t per frequent sequence of length 2–4, a confidence
// score combining type-name evidence with support, a zero-false-positive
// filter on the training data, and the coverage-maximizing selection
// algorithms: Algorithm 1 (Greedy) and the production Algorithm 2
// (Greedy-Biased), which exhausts high-confidence rules before touching
// low-confidence ones.
package mining

import (
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/tokenize"
)

// Sequence is one frequent token sequence with its support.
type Sequence struct {
	Tokens  []string
	Count   int
	Support float64 // fraction of titles containing the sequence
}

// FrequentSequences runs AprioriAll over the tokenized titles: level-wise
// candidate generation (frequent k-sequences extended by frequent tokens)
// with support counting by subsequence containment, returning all frequent
// sequences with minLen ≤ length ≤ maxLen, sorted by descending support then
// lexicographically.
func FrequentSequences(titles [][]string, minSupport float64, minLen, maxLen int) []Sequence {
	if len(titles) == 0 || maxLen <= 0 {
		return nil
	}
	minCount := int(minSupport * float64(len(titles)))
	if minCount < 1 {
		minCount = 1
	}

	// L1: frequent single tokens (presence per title).
	tokCount := map[string]int{}
	for _, title := range titles {
		seen := map[string]bool{}
		for _, tok := range title {
			if !seen[tok] {
				seen[tok] = true
				tokCount[tok]++
			}
		}
	}
	var l1 []string
	for tok, n := range tokCount {
		if n >= minCount {
			l1 = append(l1, tok)
		}
	}
	sort.Strings(l1)

	var out []Sequence
	record := func(seq []string, count int) {
		if len(seq) >= minLen {
			out = append(out, Sequence{
				Tokens:  append([]string(nil), seq...),
				Count:   count,
				Support: float64(count) / float64(len(titles)),
			})
		}
	}

	current := make([][]string, 0, len(l1))
	counts := make([]int, 0, len(l1))
	for _, tok := range l1 {
		current = append(current, []string{tok})
		counts = append(counts, tokCount[tok])
	}
	for i, seq := range current {
		record(seq, counts[i])
	}

	for k := 1; k < maxLen && len(current) > 0; k++ {
		var next [][]string
		var nextCounts []int
		for _, seq := range current {
			for _, tok := range l1 {
				cand := append(append([]string(nil), seq...), tok)
				n := 0
				for _, title := range titles {
					if tokenize.ContainsSubsequence(title, cand) {
						n++
					}
				}
				if n >= minCount {
					next = append(next, cand)
					nextCounts = append(nextCounts, n)
				}
			}
		}
		for i, seq := range next {
			record(seq, nextCounts[i])
		}
		current, counts = next, nextCounts
	}
	_ = counts

	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return strings.Join(out[i].Tokens, " ") < strings.Join(out[j].Tokens, " ")
	})
	return out
}

// Candidate is a generated rule with the metadata selection needs.
type Candidate struct {
	Rule       *core.Rule
	Confidence float64
	// Coverage holds the indices (into the labeled corpus) the rule touches.
	Coverage []int32
}

// Options parameterizes GenerateRules. Zero values take the documented
// defaults.
type Options struct {
	// MinSupport for AprioriAll per type (paper: 0.001 at 885K items;
	// default here 0.01 at the reduced scale).
	MinSupport float64
	// MinLen/MaxLen bound rule token counts (paper: 2–4; "rules with one
	// token are too general, more than four too specific").
	MinLen, MaxLen int
	// MaxRulesPerType is q in the selection algorithms (paper: 500).
	MaxRulesPerType int
	// Alpha is the high/low confidence split (paper: 0.7).
	Alpha float64
	// AllowTrainingFP, when true, skips the zero-false-positive filter on
	// training data (the paper keeps it on; exposed for ablation).
	AllowTrainingFP bool
	// SupportSaturation is the support at which the support factor of the
	// confidence score saturates to 1. Default 0.2.
	SupportSaturation float64
}

func (o Options) withDefaults() Options {
	if o.MinSupport == 0 {
		o.MinSupport = 0.01
	}
	if o.MinLen == 0 {
		o.MinLen = 2
	}
	if o.MaxLen == 0 {
		o.MaxLen = 4
	}
	if o.MaxRulesPerType == 0 {
		o.MaxRulesPerType = 500
	}
	if o.Alpha == 0 {
		o.Alpha = 0.7
	}
	if o.SupportSaturation == 0 {
		o.SupportSaturation = 0.2
	}
	return o
}

// Confidence computes the paper's linear-combination score for a mined
// sequence targeting typeName: whether the regex contains the full type
// name, how many type-name tokens appear in it, and its support.
func Confidence(seq Sequence, typeName string, saturation float64) float64 {
	nameTokens := tokenize.Normalize(typeName)
	if len(nameTokens) == 0 {
		nameTokens = tokenize.Tokenize(typeName)
	}
	inRule := map[string]bool{}
	for _, tok := range seq.Tokens {
		inRule[tok] = true
	}
	matched := 0
	for _, nt := range nameTokens {
		if inRule[nt] {
			matched++
		}
	}
	hasFullName := 0.0
	if matched == len(nameTokens) && len(nameTokens) > 0 {
		hasFullName = 1
	}
	frac := float64(matched) / float64(len(nameTokens))
	sup := seq.Support / saturation
	if sup > 1 {
		sup = 1
	}
	return 0.4*hasFullName + 0.3*frac + 0.3*sup
}

// Result is the output of GenerateRules.
type Result struct {
	// PerType maps type name to the selected candidates for that type.
	PerType map[string][]Candidate
	// TotalCandidates counts mined candidate rules before selection
	// (the paper's 874K figure, at scale).
	TotalCandidates int
	// RejectedFP counts candidates dropped by the zero-FP training filter.
	RejectedFP int
	// High and Low are the selected rules split at Alpha (the 63K / 37K
	// sets). Rules carry Provenance "mined" and their confidence score.
	High, Low []Candidate
}

// Selected returns all selected rules (high then low confidence).
func (r *Result) Selected() []*core.Rule {
	out := make([]*core.Rule, 0, len(r.High)+len(r.Low))
	for _, c := range r.High {
		out = append(out, c.Rule)
	}
	for _, c := range r.Low {
		out = append(out, c.Rule)
	}
	return out
}

// GenerateRules runs the full §5.2 pipeline over labeled items.
func GenerateRules(labeled []*catalog.Item, opts Options) (*Result, error) {
	opts = opts.withDefaults()

	// Group normalized titles per type.
	byType := map[string][]int{}
	titles := make([][]string, len(labeled))
	for i, it := range labeled {
		titles[i] = tokenize.NormalizeTokens(it.TitleTokens())
		byType[it.TrueType] = append(byType[it.TrueType], i)
	}
	di := core.NewDataIndex(labeled)

	res := &Result{PerType: map[string][]Candidate{}}
	typeNames := make([]string, 0, len(byType))
	for t := range byType {
		typeNames = append(typeNames, t)
	}
	sort.Strings(typeNames)

	for _, typeName := range typeNames {
		idxs := byType[typeName]
		typeTitles := make([][]string, len(idxs))
		for i, idx := range idxs {
			typeTitles[i] = titles[idx]
		}
		seqs := FrequentSequences(typeTitles, opts.MinSupport, opts.MinLen, opts.MaxLen)
		res.TotalCandidates += len(seqs)

		var cands []Candidate
		for _, seq := range seqs {
			src := strings.Join(seq.Tokens, ".*")
			rule, err := core.NewWhitelist(src, typeName)
			if err != nil {
				continue // e.g. stop-word-only sequence; skip defensively
			}
			rule.Provenance = "mined"
			rule.Confidence = Confidence(seq, typeName, opts.SupportSaturation)

			matches := di.Matches(rule)
			if !opts.AllowTrainingFP {
				fp := false
				for _, m := range matches {
					if labeled[m].TrueType != typeName {
						fp = true
						break
					}
				}
				if fp {
					res.RejectedFP++
					continue
				}
			}
			cands = append(cands, Candidate{Rule: rule, Confidence: rule.Confidence, Coverage: matches})
		}
		high, low := GreedyBiased(cands, opts.MaxRulesPerType, opts.Alpha)
		res.PerType[typeName] = append(append([]Candidate(nil), high...), low...)
		res.High = append(res.High, high...)
		res.Low = append(res.Low, low...)
	}
	return res, nil
}

// Greedy is Algorithm 1: repeatedly select the rule with the largest
// (new coverage × confidence) product until q rules are selected or no rule
// adds coverage.
func Greedy(cands []Candidate, q int) []Candidate {
	var selected []Candidate
	covered := map[int32]bool{}
	remaining := append([]Candidate(nil), cands...)
	for len(selected) < q && len(remaining) > 0 {
		bestIdx, bestScore, bestNew := -1, -1.0, 0
		for i, c := range remaining {
			newCov := 0
			for _, item := range c.Coverage {
				if !covered[item] {
					newCov++
				}
			}
			score := float64(newCov) * c.Confidence
			if score > bestScore {
				bestIdx, bestScore, bestNew = i, score, newCov
			}
		}
		if bestIdx < 0 || bestNew == 0 {
			return selected
		}
		best := remaining[bestIdx]
		selected = append(selected, best)
		for _, item := range best.Coverage {
			covered[item] = true
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return selected
}

// GreedyBiased is Algorithm 2: split candidates at alpha into high- and
// low-confidence pools, exhaust Greedy selection from the high pool first,
// then fill any remaining quota from the low pool over the still-uncovered
// items.
func GreedyBiased(cands []Candidate, q int, alpha float64) (high, low []Candidate) {
	var r1, r2 []Candidate
	for _, c := range cands {
		if c.Confidence >= alpha {
			r1 = append(r1, c)
		} else {
			r2 = append(r2, c)
		}
	}
	s1 := Greedy(r1, q)
	if len(s1) >= q {
		return s1, nil
	}
	// Greedy over R2 on D − Cov(S1): subtract already-covered items from the
	// low-pool coverage sets.
	covered := map[int32]bool{}
	for _, c := range s1 {
		for _, item := range c.Coverage {
			covered[item] = true
		}
	}
	reduced := make([]Candidate, 0, len(r2))
	for _, c := range r2 {
		var remainingCov []int32
		for _, item := range c.Coverage {
			if !covered[item] {
				remainingCov = append(remainingCov, item)
			}
		}
		if len(remainingCov) == 0 {
			continue
		}
		reduced = append(reduced, Candidate{Rule: c.Rule, Confidence: c.Confidence, Coverage: remainingCov})
	}
	s2 := Greedy(reduced, q-len(s1))
	// Return the low-pool selections with their original coverage sets.
	byID := map[string]Candidate{}
	for _, c := range r2 {
		byID[key(c)] = c
	}
	for _, c := range s2 {
		low = append(low, byID[key(c)])
	}
	return s1, low
}

func key(c Candidate) string {
	return c.Rule.Source + "→" + c.Rule.TargetType
}
