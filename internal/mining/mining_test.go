package mining

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/tokenize"
)

func tok(ss ...string) [][]string {
	out := make([][]string, len(ss))
	for i, s := range ss {
		out[i] = tokenize.Tokenize(s)
	}
	return out
}

func TestFrequentSequencesPaperExample(t *testing.T) {
	titles := tok(
		"dickies indigo blue relaxed fit denim jeans 38x30",
		"dickies carpenter jeans loose fit",
		"bluepeak denim skinny jeans",
		"ranchhand relaxed fit jeans denim",
	)
	seqs := FrequentSequences(titles, 0.5, 2, 4)
	found := map[string]Sequence{}
	for _, s := range seqs {
		found[strings.Join(s.Tokens, " ")] = s
	}
	if s, ok := found["denim jeans"]; !ok || s.Count != 2 {
		t.Fatalf("denim jeans should be frequent with count 2: %+v (all: %v)", s, found)
	}
	// "fit jeans" appears in titles 1 and 4 (order matters: title 2 has
	// "jeans loose fit").
	if s, ok := found["fit jeans"]; !ok || s.Count != 2 {
		t.Fatalf("fit jeans should have count 2: %+v", s)
	}
	if _, ok := found["jeans denim"]; ok {
		t.Fatal("order matters: 'jeans denim' appears only once (support 0.25)")
	}
}

func TestFrequentSequencesLengthBounds(t *testing.T) {
	titles := tok("a b c d e", "a b c d e", "a b c d e")
	seqs := FrequentSequences(titles, 0.9, 2, 3)
	for _, s := range seqs {
		if len(s.Tokens) < 2 || len(s.Tokens) > 3 {
			t.Fatalf("length bounds violated: %v", s.Tokens)
		}
	}
	// 5 choose 2 ordered-subsequence pairs = 10, triples = 10.
	if len(seqs) != 20 {
		t.Fatalf("want 10 pairs + 10 triples = 20, got %d", len(seqs))
	}
}

func TestFrequentSequencesApriori(t *testing.T) {
	// Every reported sequence must meet min support; and every prefix of a
	// reported sequence must also be frequent (Apriori property).
	titles := tok(
		"x a b c", "y a b c", "z a c", "w b c", "v a b",
	)
	seqs := FrequentSequences(titles, 0.4, 2, 3)
	counts := map[string]int{}
	for _, s := range seqs {
		counts[strings.Join(s.Tokens, " ")] = s.Count
		if s.Support < 0.4 {
			t.Fatalf("below support: %+v", s)
		}
	}
	if counts["a b c"] == 0 {
		t.Fatal("a b c should be frequent (2/5)")
	}
	if counts["a b"] == 0 || counts["b c"] == 0 {
		t.Fatal("subsequences of frequent sequences must be frequent")
	}
}

func TestFrequentSequencesEmpty(t *testing.T) {
	if FrequentSequences(nil, 0.1, 2, 4) != nil {
		t.Fatal("no titles should yield nil")
	}
}

func TestConfidenceFactors(t *testing.T) {
	sat := 0.2
	full := Confidence(Sequence{Tokens: []string{"denim", "jeans"}, Support: 0.5}, "jeans", sat)
	partial := Confidence(Sequence{Tokens: []string{"denim", "fit"}, Support: 0.5}, "jeans", sat)
	if full <= partial {
		t.Fatalf("type-name evidence should raise confidence: %v vs %v", full, partial)
	}
	hiSup := Confidence(Sequence{Tokens: []string{"denim", "fit"}, Support: 0.5}, "jeans", sat)
	loSup := Confidence(Sequence{Tokens: []string{"denim", "fit"}, Support: 0.001}, "jeans", sat)
	if hiSup <= loSup {
		t.Fatalf("support should raise confidence: %v vs %v", hiSup, loSup)
	}
	multi := Confidence(Sequence{Tokens: []string{"area", "rug"}, Support: 0.3}, "area rugs", sat)
	if multi <= 0 || multi > 1 {
		t.Fatalf("confidence out of range: %v", multi)
	}
}

func mkCand(t *testing.T, src, target string, conf float64, cov ...int32) Candidate {
	t.Helper()
	r, err := core.NewWhitelist(src, target)
	if err != nil {
		t.Fatal(err)
	}
	r.Confidence = conf
	return Candidate{Rule: r, Confidence: conf, Coverage: cov}
}

func TestGreedyPicksCoverageTimesConfidence(t *testing.T) {
	cands := []Candidate{
		mkCand(t, "a.*b", "t", 0.5, 1, 2, 3, 4),       // score 2.0
		mkCand(t, "c.*d", "t", 0.9, 1, 2),             // score 1.8
		mkCand(t, "e.*f", "t", 0.9, 5, 6, 7),          // score 2.7 ← first
		mkCand(t, "g.*h", "t", 0.1, 1, 2, 3, 4, 5, 6), // score 0.6
	}
	got := Greedy(cands, 10)
	if len(got) == 0 || got[0].Rule.Source != "e.*f" {
		t.Fatalf("first pick should be e.*f, got %v", got)
	}
	// All items end up covered; selection stops when no new coverage.
	covered := map[int32]bool{}
	for _, c := range got {
		for _, i := range c.Coverage {
			covered[i] = true
		}
	}
	if len(covered) != 7 {
		t.Fatalf("coverage incomplete: %v", covered)
	}
}

func TestGreedyRespectsQ(t *testing.T) {
	cands := []Candidate{
		mkCand(t, "a.*b", "t", 0.9, 1),
		mkCand(t, "c.*d", "t", 0.9, 2),
		mkCand(t, "e.*f", "t", 0.9, 3),
	}
	if got := Greedy(cands, 2); len(got) != 2 {
		t.Fatalf("q not respected: %d", len(got))
	}
}

func TestGreedyStopsWithoutNewCoverage(t *testing.T) {
	cands := []Candidate{
		mkCand(t, "a.*b", "t", 0.9, 1, 2),
		mkCand(t, "c.*d", "t", 0.8, 1, 2), // fully redundant
	}
	if got := Greedy(cands, 5); len(got) != 1 {
		t.Fatalf("redundant rule selected: %d", len(got))
	}
}

func TestGreedyBiasedPrefersHighConfidence(t *testing.T) {
	// A low-confidence rule with huge coverage must not displace
	// high-confidence rules (the paper's reason for Algorithm 2).
	cands := []Candidate{
		mkCand(t, "lo.*cov", "t", 0.3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
		mkCand(t, "hi.*one", "t", 0.9, 1, 2),
		mkCand(t, "hi.*two", "t", 0.8, 3, 4),
	}
	high, low := GreedyBiased(cands, 3, 0.7)
	if len(high) != 2 {
		t.Fatalf("both high-confidence rules should be selected first: %v", high)
	}
	if len(low) != 1 || low[0].Rule.Source != "lo.*cov" {
		t.Fatalf("low rule should fill the remainder: %v", low)
	}
	// Plain Greedy would have started with the big low-confidence rule.
	plain := Greedy(cands, 3)
	if plain[0].Rule.Source != "lo.*cov" {
		t.Fatalf("baseline check: plain greedy should pick lo.*cov first, got %s", plain[0].Rule.Source)
	}
}

func TestGreedyBiasedQuotaExhaustedByHigh(t *testing.T) {
	cands := []Candidate{
		mkCand(t, "a.*b", "t", 0.9, 1),
		mkCand(t, "c.*d", "t", 0.9, 2),
		mkCand(t, "e.*f", "t", 0.2, 3),
	}
	high, low := GreedyBiased(cands, 2, 0.7)
	if len(high) != 2 || len(low) != 0 {
		t.Fatalf("quota should be exhausted by high rules: %d/%d", len(high), len(low))
	}
}

func TestGreedyBiasedLowKeepsOriginalCoverage(t *testing.T) {
	cands := []Candidate{
		mkCand(t, "a.*b", "t", 0.9, 1, 2),
		mkCand(t, "c.*d", "t", 0.3, 2, 3),
	}
	_, low := GreedyBiased(cands, 5, 0.7)
	if len(low) != 1 || len(low[0].Coverage) != 2 {
		t.Fatalf("low candidate should report original coverage: %v", low)
	}
}

func TestGenerateRulesEndToEnd(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 41, NumTypes: 25})
	labeled := cat.LabeledData(4000)
	res, err := GenerateRules(labeled, Options{MinSupport: 0.05, MaxRulesPerType: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCandidates == 0 {
		t.Fatal("no candidates mined")
	}
	if len(res.High) == 0 {
		t.Fatal("no high-confidence rules selected")
	}
	if len(res.High)+len(res.Low) > res.TotalCandidates {
		t.Fatal("selected more than mined")
	}

	// Selected rules must be valid, provenance-tagged, and zero-FP on the
	// training data.
	di := core.NewDataIndex(labeled)
	for _, c := range append(append([]Candidate(nil), res.High...), res.Low...) {
		if c.Rule.Provenance != "mined" {
			t.Fatalf("missing provenance: %+v", c.Rule)
		}
		for _, m := range di.Matches(c.Rule) {
			if labeled[m].TrueType != c.Rule.TargetType {
				t.Fatalf("rule %s has a training false positive", c.Rule.Source)
			}
		}
	}

	// High rules all ≥ alpha, low all < alpha.
	for _, c := range res.High {
		if c.Confidence < 0.7 {
			t.Fatalf("high rule below alpha: %v", c.Confidence)
		}
	}
	for _, c := range res.Low {
		if c.Confidence >= 0.7 {
			t.Fatalf("low rule above alpha: %v", c.Confidence)
		}
	}

	// The generated rules should cover a decent share of the training data.
	covered := map[int32]bool{}
	for _, c := range append(append([]Candidate(nil), res.High...), res.Low...) {
		for _, i := range c.Coverage {
			covered[i] = true
		}
	}
	frac := float64(len(covered)) / float64(len(labeled))
	if frac < 0.3 {
		t.Fatalf("selected rules cover only %.2f of training data", frac)
	}
}

func TestGenerateRulesZeroFPFilterAblation(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 42, NumTypes: 20})
	labeled := cat.LabeledData(2500)
	strict, err := GenerateRules(labeled, Options{MinSupport: 0.05, MaxRulesPerType: 50})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := GenerateRules(labeled, Options{MinSupport: 0.05, MaxRulesPerType: 50, AllowTrainingFP: true})
	if err != nil {
		t.Fatal(err)
	}
	if strict.RejectedFP == 0 {
		t.Fatal("zero-FP filter never fired — catalog should have ambiguous sequences")
	}
	if loose.RejectedFP != 0 {
		t.Fatal("ablation should skip the filter")
	}
}

func TestResultSelected(t *testing.T) {
	res := &Result{
		High: []Candidate{mkCand(t, "a.*b", "t", 0.9, 1)},
		Low:  []Candidate{mkCand(t, "c.*d", "t", 0.3, 2)},
	}
	sel := res.Selected()
	if len(sel) != 2 || sel[0].Source != "a.*b" {
		t.Fatalf("Selected() wrong: %v", sel)
	}
}
