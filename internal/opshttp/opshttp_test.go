package opshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/serve"
)

// testStack builds a real rulebase + serve.Engine and an ops server bound to
// an ephemeral port, wired exactly like a binary would wire it.
func testStack(t *testing.T) (*core.Rulebase, *serve.Engine, *obs.AuditLog, *Server, string) {
	t.Helper()
	reg := obs.NewRegistry()
	rb := core.NewRulebase()
	r, err := core.NewWhitelist("rings?", "rings")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Add(r, "ops"); err != nil {
		t.Fatal(err)
	}
	eng := serve.NewEngine(rb, serve.EngineOptions{Obs: reg})
	audit := obs.NewAuditLog(obs.AuditConfig{Capacity: 128, SampleEvery: 1})

	srv, err := New(Options{
		Registry: reg,
		Audit:    audit,
		Health: func() HealthStatus {
			snap := eng.Current()
			return HealthStatus{
				Degraded:        eng.Degraded(),
				Ready:           true,
				QueueDepth:      0,
				QueueCapacity:   64,
				SnapshotVersion: snap.Version(),
			}
		},
		Snapshot: func() SnapshotInfo {
			snap := eng.Current()
			ids := snap.ActiveIDs()
			return SnapshotInfo{Version: snap.Version(), ActiveRules: len(ids), RuleIDs: ids}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	return rb, eng, audit, srv, "http://" + addr
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	_, _, _, _, base := testStack(t)
	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE " + serve.MetricSnapshotSwaps + " counter",
		serve.MetricSnapshotVersion,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestHealthzDegradesAndRecovers drives the engine through a failed rebuild
// (injected via faultinject) and back: /healthz must flip 200 → 503 → 200
// with the engine's degraded state.
func TestHealthzDegradesAndRecovers(t *testing.T) {
	rb, eng, _, _, base := testStack(t)

	if code, body := get(t, base+"/healthz"); code != 200 {
		t.Fatalf("healthy engine: /healthz = %d (%s)", code, body)
	}

	// Every rebuild fails while the injector is wired at P=1.
	inj := faultinject.New(faultinject.Config{Seed: 7, RebuildErrorP: 1})
	eng.SetRebuildFault(inj.RebuildFault)
	mutate(t, rb, "jeans?", "jeans")
	eng.Acquire() // failed rebuild → degraded, stale snapshot kept

	code, body := get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded engine: /healthz = %d (%s)", code, body)
	}
	var st HealthStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil || !st.Degraded {
		t.Fatalf("degraded body: %s (err %v)", body, err)
	}

	// Clear the fault; the next rebuild succeeds and health recovers.
	eng.SetRebuildFault(nil)
	eng.Acquire()
	if code, body := get(t, base+"/healthz"); code != 200 {
		t.Fatalf("recovered engine: /healthz = %d (%s)", code, body)
	}
}

func mutate(t *testing.T, rb *core.Rulebase, src, target string) {
	t.Helper()
	r, err := core.NewWhitelist(src, target)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Add(r, "ops"); err != nil {
		t.Fatal(err)
	}
}

func TestReadyzQueueWatermark(t *testing.T) {
	depth := 0
	var mu sync.Mutex
	srv, err := New(Options{
		Registry:       obs.NewRegistry(),
		ReadyWatermark: 0.5,
		Health: func() HealthStatus {
			mu.Lock()
			defer mu.Unlock()
			return HealthStatus{Ready: true, QueueDepth: depth, QueueCapacity: 10}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	base := "http://" + addr

	if code, _ := get(t, base+"/readyz"); code != 200 {
		t.Fatalf("empty queue: /readyz = %d", code)
	}
	mu.Lock()
	depth = 5 // at the 0.5 * 10 watermark
	mu.Unlock()
	if code, _ := get(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("saturated queue: /readyz = %d", code)
	}
	mu.Lock()
	depth = 4
	mu.Unlock()
	if code, _ := get(t, base+"/readyz"); code != 200 {
		t.Fatalf("drained queue: /readyz = %d", code)
	}
}

func TestDecisionsTailAndFilters(t *testing.T) {
	_, _, audit, _, base := testStack(t)
	for i := 0; i < 5; i++ {
		audit.Observe(&obs.DecisionRecord{
			ItemID: fmt.Sprintf("it-%d", i), Path: obs.PathBatchGate,
			Outcome: obs.OutcomeClassified, Fired: []string{"r1"},
		})
	}
	audit.Observe(&obs.DecisionRecord{
		ItemID: "bad", Path: obs.PathClassifier,
		Outcome: obs.OutcomeDeclined, Vetoed: []string{"r9"}, Reason: "no-votes",
	})

	code, body := get(t, base+"/decisions?n=3")
	if code != 200 {
		t.Fatalf("/decisions = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 3 {
		t.Fatalf("n=3 returned %d lines:\n%s", len(lines), body)
	}
	var rec obs.DecisionRecord
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &rec); err != nil {
		t.Fatalf("NDJSON line did not parse: %v", err)
	}
	if rec.ItemID != "bad" {
		t.Errorf("newest-last ordering: last line is %q", rec.ItemID)
	}

	// Filters: by vetoing rule ID, by outcome, conjunctive with path.
	if _, body := get(t, base+"/decisions?rule=r9"); strings.Count(body, "\n") != 1 {
		t.Errorf("rule=r9 filter:\n%s", body)
	}
	if _, body := get(t, base+"/decisions?outcome=declined&path=batch-gate"); strings.TrimSpace(body) != "" {
		t.Errorf("conjunctive filter should be empty:\n%s", body)
	}
	if code, _ := get(t, base+"/decisions?n=zero"); code != http.StatusBadRequest {
		t.Errorf("bad n accepted: %d", code)
	}
}

// TestDecisionsExport: /decisions/export serves the full retained ring as a
// downloadable NDJSON attachment (not capped by DecisionsLimit), with ?n=
// and the conjunctive filters behaving like /decisions.
func TestDecisionsExport(t *testing.T) {
	_, _, audit, _, base := testStack(t)
	// More records than the default /decisions cap would matter for, fewer
	// than the 128-slot ring so nothing is evicted.
	for i := 0; i < 100; i++ {
		audit.Observe(&obs.DecisionRecord{
			ItemID: fmt.Sprintf("it-%d", i), Path: obs.PathBatchGate,
			Outcome: obs.OutcomeClassified, Fired: []string{"r1"},
		})
	}
	audit.Observe(&obs.DecisionRecord{
		ItemID: "bad", Path: obs.PathClassifier,
		Outcome: obs.OutcomeDeclined, Vetoed: []string{"r9"},
	})

	resp, err := http.Get(base + "/decisions/export")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("/decisions/export = %d", resp.StatusCode)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "attachment") {
		t.Fatalf("Content-Disposition = %q, want an attachment", cd)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 101 {
		t.Fatalf("export returned %d lines, want the full ring (101)", len(lines))
	}
	var first, last obs.DecisionRecord
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if first.ItemID != "it-0" || last.ItemID != "bad" {
		t.Fatalf("export order: first=%q last=%q, want oldest-first", first.ItemID, last.ItemID)
	}

	if _, body := get(t, base+"/decisions/export?n=7"); strings.Count(strings.TrimSpace(body), "\n") != 6 {
		t.Errorf("n=7 export:\n%s", body)
	}
	if _, body := get(t, base+"/decisions/export?rule=r9"); strings.Count(body, "\n") != 1 {
		t.Errorf("rule=r9 export filter:\n%s", body)
	}
	if code, _ := get(t, base+"/decisions/export?n=-1"); code != http.StatusBadRequest {
		t.Errorf("bad n accepted: %d", code)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	rb, eng, _, _, base := testStack(t)
	mutate(t, rb, "jeans?", "jeans")
	eng.Acquire()

	code, body := get(t, base+"/snapshot")
	if code != 200 {
		t.Fatalf("/snapshot = %d", code)
	}
	var info SnapshotInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.Version != eng.Current().Version() || info.ActiveRules != 2 {
		t.Fatalf("snapshot info = %+v", info)
	}
}

func TestPprofIndex(t *testing.T) {
	_, _, _, _, base := testStack(t)
	code, body := get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d:\n%.200s", code, body)
	}
}

// TestEndpointsConcurrent hammers every read endpoint while the audit ring
// and the engine churn — the -race regression for the ops surface.
func TestEndpointsConcurrent(t *testing.T) {
	rb, eng, audit, _, base := testStack(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // audit writer
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				audit.Observe(&obs.DecisionRecord{ItemID: fmt.Sprintf("w-%d", i), Path: obs.PathPerItem, Outcome: obs.OutcomeClassified})
			}
		}
	}()
	wg.Add(1)
	go func() { // rulebase mutator + rebuilds
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				mutate(t, rb, fmt.Sprintf("tok%da?", i), "rings")
				eng.Acquire()
			}
		}
	}()

	paths := []string{"/metrics", "/healthz", "/readyz", "/decisions?n=16", "/snapshot"}
	var cg sync.WaitGroup
	for _, p := range paths {
		for k := 0; k < 2; k++ {
			cg.Add(1)
			go func(p string) {
				defer cg.Done()
				for i := 0; i < 25; i++ {
					if code, _ := get(t, base+p); code >= 500 && code != http.StatusServiceUnavailable {
						t.Errorf("%s returned %d", p, code)
						return
					}
				}
			}(p)
		}
	}
	cg.Wait()
	close(stop)
	wg.Wait()
}

// TestReadyzShardAggregation: a sharded health provider switches /readyz to
// per-shard judgment — ready while at least one shard can absorb traffic,
// 503 only when every shard is degraded or saturated, with the partial
// capacity reported in ready_shards/total_shards.
func TestReadyzShardAggregation(t *testing.T) {
	var mu sync.Mutex
	shards := []ShardHealth{
		{Shard: 0, QueueDepth: 0, QueueCapacity: 10},
		{Shard: 1, QueueDepth: 0, QueueCapacity: 10},
		{Shard: 2, QueueDepth: 0, QueueCapacity: 10},
	}
	srv, err := New(Options{
		Registry:       obs.NewRegistry(),
		ReadyWatermark: 0.5,
		Health: func() HealthStatus {
			mu.Lock()
			defer mu.Unlock()
			out := make([]ShardHealth, len(shards))
			copy(out, shards)
			return HealthStatus{Ready: true, Shards: out}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	base := "http://" + addr

	readyz := func() (int, HealthStatus) {
		t.Helper()
		code, body := get(t, base+"/readyz")
		var st HealthStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("readyz body: %v", err)
		}
		return code, st
	}

	if code, st := readyz(); code != 200 || st.ReadyShards != 3 || st.TotalShards != 3 {
		t.Fatalf("all healthy: code %d ready %d/%d, want 200 3/3", code, st.ReadyShards, st.TotalShards)
	}

	// One shard degraded, one saturated: the tier still has a live shard.
	mu.Lock()
	shards[0].Degraded = true
	shards[1].QueueDepth = 5 // at the 0.5 * 10 watermark
	mu.Unlock()
	if code, st := readyz(); code != 200 || st.ReadyShards != 1 {
		t.Fatalf("partial capacity: code %d ready %d, want 200 with 1 ready shard", code, st.ReadyShards)
	}

	// Every shard out: now the balancer must stop routing.
	mu.Lock()
	shards[2].QueueDepth = 9
	mu.Unlock()
	if code, st := readyz(); code != http.StatusServiceUnavailable || st.ReadyShards != 0 {
		t.Fatalf("no capacity: code %d ready %d, want 503 with 0 ready shards", code, st.ReadyShards)
	}

	// Recovery of any one shard restores readiness.
	mu.Lock()
	shards[1].QueueDepth = 1
	mu.Unlock()
	if code, st := readyz(); code != 200 || st.ReadyShards != 1 {
		t.Fatalf("recovered shard: code %d ready %d, want 200 with 1 ready shard", code, st.ReadyShards)
	}
}
