// Package opshttp is the embeddable live-ops surface: a small HTTP server
// exposing the observability layer over the endpoints an operator (or a
// scraper) expects —
//
//	/metrics       Prometheus text exposition of an obs.Registry
//	/healthz       liveness; 503 while the serving engine is degraded
//	/readyz        readiness; 503 when not ready or the queue is past the
//	               load watermark
//	/decisions     NDJSON tail of the decision-provenance ring, filterable
//	               by rule ID, path, and outcome
//	/decisions/export
//	               same records as a downloadable NDJSON attachment,
//	               defaulting to the FULL retained ring (incident evidence
//	               capture, not a live tail)
//	/snapshot      active rule-set version + rule health summary
//	/debug/pprof/  the standard Go profiling endpoints
//
// The package depends only on obs and the standard library: health and
// snapshot state are supplied as provider funcs, so wiring to the serve
// engine happens in the binary, not here, and the package stays importable
// from anywhere without cycles.
package opshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// HealthStatus is one health probe result, produced by the Health provider
// on every /healthz and /readyz request.
type HealthStatus struct {
	// Degraded mirrors the serving engine: the last snapshot rebuild failed
	// and a stale snapshot is being served. /healthz returns 503 while set.
	Degraded bool `json:"degraded"`
	// Ready gates /readyz independently of liveness (e.g. still warming up).
	Ready bool `json:"ready"`
	// QueueDepth / QueueCapacity describe the serving queue;
	// /readyz returns 503 when depth reaches the watermark fraction of
	// capacity (see Options.ReadyWatermark).
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// SnapshotVersion is the rulebase snapshot currently served.
	SnapshotVersion uint64 `json:"snapshot_version"`
	// Detail is a free-form operator hint ("rebuild failed: ...", "ok").
	Detail string `json:"detail,omitempty"`
	// Shards, when non-empty, switches /readyz to sharded aggregation: each
	// shard is judged independently (degraded flag + its own queue
	// watermark) and the tier is ready while at least one shard can still
	// absorb traffic — a single stalled shard degrades its key range, not
	// the whole process's readiness. ReadyShards/TotalShards are filled by
	// the handler on the way out.
	Shards      []ShardHealth `json:"shards,omitempty"`
	ReadyShards int           `json:"ready_shards,omitempty"`
	TotalShards int           `json:"total_shards,omitempty"`
}

// ShardHealth is one shard's health probe inside a sharded HealthStatus.
type ShardHealth struct {
	Shard           int    `json:"shard"`
	Degraded        bool   `json:"degraded"`
	QueueDepth      int    `json:"queue_depth"`
	QueueCapacity   int    `json:"queue_capacity"`
	SnapshotVersion uint64 `json:"snapshot_version"`
}

// SnapshotInfo describes the active rule set for /snapshot.
type SnapshotInfo struct {
	Version     uint64   `json:"version"`
	ActiveRules int      `json:"active_rules"`
	RuleIDs     []string `json:"rule_ids,omitempty"`
	// RuleHealth is the telemetry-ranked health report (any JSON-encodable
	// shape; typically []core.RuleHealth).
	RuleHealth any `json:"rule_health,omitempty"`
}

// Options wires a Server to the process's observability state. Registry is
// required; the rest degrade gracefully when absent (endpoints answer with
// what they have).
type Options struct {
	// Registry backs /metrics (required).
	Registry *obs.Registry
	// Audit backs /decisions; nil serves an empty tail.
	Audit *obs.AuditLog
	// Health is called per health request; nil means always live and ready.
	Health func() HealthStatus
	// Snapshot is called per /snapshot request; nil returns 404 there.
	Snapshot func() SnapshotInfo
	// ReadyWatermark is the queue-load fraction at or above which /readyz
	// flips to 503 (default 0.9; values outside (0,1] clamp).
	ReadyWatermark float64
	// DecisionsLimit caps ?n= on /decisions (default 256).
	DecisionsLimit int
}

// Server is the ops HTTP server. Create with New, bind with Start, stop
// with Close.
type Server struct {
	opts Options

	mu   sync.Mutex
	http *http.Server
	addr string
}

// New validates opts and assembles the server (not yet listening).
func New(opts Options) (*Server, error) {
	if opts.Registry == nil {
		return nil, fmt.Errorf("opshttp: Options.Registry is required")
	}
	if opts.ReadyWatermark <= 0 || opts.ReadyWatermark > 1 {
		opts.ReadyWatermark = 0.9
	}
	if opts.DecisionsLimit <= 0 {
		opts.DecisionsLimit = 256
	}
	return &Server{opts: opts}, nil
}

// Handler returns the ops mux — usable standalone (tests, embedding into an
// existing server) without Start.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/decisions", s.handleDecisions)
	mux.HandleFunc("/decisions/export", s.handleDecisionsExport)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds addr (use ":0" for an ephemeral port) and serves in a
// background goroutine. It returns the bound address, so callers can print
// or scrape it.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	hs := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.http = hs
	s.addr = ln.Addr().String()
	s.mu.Unlock()
	go func() { _ = hs.Serve(ln) }()
	return s.Addr(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Close shuts the listener down gracefully under ctx.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	hs := s.http
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Shutdown(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.opts.Registry.PrometheusText()))
}

func (s *Server) health() HealthStatus {
	if s.opts.Health == nil {
		return HealthStatus{Ready: true, Detail: "no health provider wired"}
	}
	return s.opts.Health()
}

func writeHealth(w http.ResponseWriter, st HealthStatus, ok bool) {
	w.Header().Set("Content-Type", "application/json")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// handleHealthz is liveness: the process answers and the serving engine is
// not degraded.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.health()
	writeHealth(w, st, !st.Degraded)
}

// handleReadyz is readiness: live, Ready, and the queue below the
// watermark — the signal a load balancer uses to stop routing before the
// server starts shedding. With a sharded health provider (Shards non-empty)
// each shard is judged independently and the tier stays ready while at
// least one shard can absorb traffic; ready_shards/total_shards in the body
// give the balancer (and the operator) the partial-capacity picture.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st := s.health()
	ok := !st.Degraded && st.Ready
	if len(st.Shards) > 0 {
		st.TotalShards = len(st.Shards)
		for _, sh := range st.Shards {
			if !sh.Degraded && sh.QueueDepth < s.watermark(sh.QueueCapacity) {
				st.ReadyShards++
			}
		}
		ok = st.Ready && st.ReadyShards > 0
	} else if st.QueueCapacity > 0 && st.QueueDepth >= s.watermark(st.QueueCapacity) {
		ok = false
	}
	writeHealth(w, st, ok)
}

// watermark converts a queue capacity into the not-ready depth threshold.
func (s *Server) watermark(capacity int) int {
	if capacity <= 0 {
		return int(^uint(0) >> 1) // no capacity info: depth never trips it
	}
	wm := int(s.opts.ReadyWatermark * float64(capacity))
	if wm < 1 {
		wm = 1
	}
	return wm
}

// handleDecisions streams the decision tail as NDJSON, newest last.
// Query params: n (max records), rule (fired or vetoed rule ID), path,
// outcome — filters are conjunctive.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n := s.opts.DecisionsLimit
	if v := q.Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		if p < n {
			n = p
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if !s.opts.Audit.Enabled() {
		return
	}
	recs := s.opts.Audit.TailFiltered(n, q.Get("rule"), q.Get("path"), q.Get("outcome"))
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		_ = enc.Encode(rec)
	}
}

// handleDecisionsExport is the incident-evidence capture endpoint: the same
// NDJSON records as /decisions but served as a downloadable attachment and
// defaulting to the FULL retained ring rather than the tail limit — an
// operator pulling evidence after an incident wants everything the ring
// still holds, not the last few lines. ?n= narrows to the newest n; the
// rule/path/outcome filters compose the same way as /decisions.
func (s *Server) handleDecisionsExport(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n := s.opts.Audit.Capacity()
	if v := q.Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		if p < n {
			n = p
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Content-Disposition", `attachment; filename="decisions.ndjson"`)
	if !s.opts.Audit.Enabled() {
		return
	}
	recs := s.opts.Audit.TailFiltered(n, q.Get("rule"), q.Get("path"), q.Get("outcome"))
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		_ = enc.Encode(rec)
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	if s.opts.Snapshot == nil {
		http.Error(w, "no snapshot provider wired", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.opts.Snapshot())
}
