package em

import (
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/randx"
)

// dupCorpus builds a corpus where known duplicates sit at known indices:
// each positive pair contributes (original, perturbed copy).
func dupCorpus(t *testing.T, n int) ([]*catalog.Item, [][2]int32) {
	t.Helper()
	cat := catalog.New(catalog.Config{Seed: 111, NumTypes: 30})
	pairs := GeneratePairs(cat, randx.New(7), n, 0)
	var corpus []*catalog.Item
	var truth [][2]int32
	for _, p := range pairs {
		i := int32(len(corpus))
		corpus = append(corpus, p.A, p.B)
		truth = append(truth, [2]int32{i, i + 1})
	}
	return corpus, truth
}

func dedupeRules() *RuleSet {
	return &RuleSet{Rules: []*Rule{
		NewRule("isbn", AttrEquals("isbn"), QGramJaccard("Title", 3, 0.4)),
		NewRule("title", QGramJaccard("Title", 3, 0.75)),
		NewRule("brand-title", AttrEquals("Brand Name"), TokenJaccard("Title", 0.6)),
	}}
}

func TestMatchCorpusFindsDuplicates(t *testing.T) {
	corpus, truth := dupCorpus(t, 150)
	matches := MatchCorpus(dedupeRules(), corpus, 3, 4)
	found := map[[2]int32]bool{}
	for _, m := range matches {
		found[[2]int32{m.I, m.J}] = true
		if m.I >= m.J {
			t.Fatalf("match indices not ordered: %+v", m)
		}
		if m.RuleID == "" {
			t.Fatalf("match without rule attribution: %+v", m)
		}
	}
	hit := 0
	for _, tp := range truth {
		if found[tp] {
			hit++
		}
	}
	if float64(hit)/float64(len(truth)) < 0.6 {
		t.Fatalf("recall too low: %d/%d known duplicates found", hit, len(truth))
	}
}

func TestMatchCorpusWorkerInvariance(t *testing.T) {
	corpus, _ := dupCorpus(t, 120)
	rs := dedupeRules()
	one := MatchCorpus(rs, corpus, 3, 1)
	eight := MatchCorpus(rs, corpus, 3, 8)
	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("worker count changed the match set: %d vs %d matches", len(one), len(eight))
	}
}

func TestMatchCorpusNoSelfOrDoubleCounting(t *testing.T) {
	corpus, _ := dupCorpus(t, 60)
	matches := MatchCorpus(dedupeRules(), corpus, 3, 4)
	seen := map[[2]int32]bool{}
	for _, m := range matches {
		key := [2]int32{m.I, m.J}
		if seen[key] {
			t.Fatalf("pair reported twice: %+v", m)
		}
		seen[key] = true
		if m.I == m.J {
			t.Fatalf("self match: %+v", m)
		}
	}
}

func TestClusters(t *testing.T) {
	matches := []Match{{I: 0, J: 1}, {I: 1, J: 2}, {I: 4, J: 5}}
	groups := Clusters(7, matches)
	if len(groups) != 2 {
		t.Fatalf("want 2 clusters, got %v", groups)
	}
	if !reflect.DeepEqual(groups[0], []int32{0, 1, 2}) {
		t.Fatalf("transitive cluster wrong: %v", groups[0])
	}
	if !reflect.DeepEqual(groups[1], []int32{4, 5}) {
		t.Fatalf("pair cluster wrong: %v", groups[1])
	}
}

func TestClustersNoMatches(t *testing.T) {
	if got := Clusters(5, nil); len(got) != 0 {
		t.Fatalf("no matches should yield no clusters: %v", got)
	}
}

func TestClustersEndToEnd(t *testing.T) {
	corpus, _ := dupCorpus(t, 80)
	matches := MatchCorpus(dedupeRules(), corpus, 3, 4)
	groups := Clusters(len(corpus), matches)
	if len(groups) == 0 {
		t.Fatal("no duplicate clusters found")
	}
	// Clusters must be disjoint and each index valid.
	seen := map[int32]bool{}
	for _, g := range groups {
		for _, i := range g {
			if i < 0 || int(i) >= len(corpus) || seen[i] {
				t.Fatalf("bad cluster member %d", i)
			}
			seen[i] = true
		}
	}
}
