package em

import (
	"sort"
	"sync"

	"repro/internal/catalog"
)

// This file implements the §5.3 project: "a solution that can execute a set
// of matching rules efficiently on a cluster of machines, over a large
// amount of data" — here, blocked candidate generation plus a shared-nothing
// worker pool (the goroutine stand-in for the cluster).

// Match is one matched record pair found in a corpus.
type Match struct {
	I, J   int32 // corpus indices, I < J
	RuleID string
}

// MatchCorpus finds all matching pairs within a corpus: candidates come from
// the blocker (k rare tokens per record), the rule set decides, and the
// record range is sharded across workers. Results are deterministic
// (sorted by (I, J)) regardless of worker count.
func MatchCorpus(rs *RuleSet, items []*catalog.Item, blockKeys, workers int) []Match {
	if blockKeys <= 0 {
		blockKeys = 2
	}
	if workers <= 0 {
		workers = 1
	}
	blocker := NewBlocker(items)

	shards := make([][]Match, workers)
	var wg sync.WaitGroup
	chunk := (len(items) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(items) {
			break
		}
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []Match
			for i := lo; i < hi; i++ {
				for _, j := range blocker.Candidates(items[i], blockKeys) {
					if int32(i) >= j {
						continue // each unordered pair decided once, by its lower index
					}
					if ok, ruleID := rs.Apply(items[i], items[j]); ok {
						out = append(out, Match{I: int32(i), J: j, RuleID: ruleID})
					}
				}
			}
			shards[w] = out
		}(w, lo, hi)
	}
	wg.Wait()

	var all []Match
	for _, s := range shards {
		all = append(all, s...)
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].I != all[b].I {
			return all[a].I < all[b].I
		}
		return all[a].J < all[b].J
	})
	return all
}

// Clusters groups corpus indices into connected components of the match
// graph — the dedup output a downstream catalog-merge consumes.
func Clusters(n int, matches []Match) [][]int32 {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, m := range matches {
		ri, rj := find(m.I), find(m.J)
		if ri != rj {
			if ri > rj {
				ri, rj = rj, ri
			}
			parent[rj] = ri
		}
	}
	groups := map[int32][]int32{}
	for i := range parent {
		root := find(int32(i))
		groups[root] = append(groups[root], int32(i))
	}
	var out [][]int32
	for _, g := range groups {
		if len(g) > 1 {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}
