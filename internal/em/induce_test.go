package em

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/crowd"
	"repro/internal/randx"
)

func inducedFixture(t *testing.T) (train, test []Pair, pool []Predicate) {
	t.Helper()
	cat := catalog.New(catalog.Config{Seed: 131, NumTypes: 30})
	train = GeneratePairs(cat, randx.New(1), 400, 400)
	test = GeneratePairs(cat, randx.New(2), 300, 300)
	pool = DefaultPredicatePool(train, 0.2)
	return train, test, pool
}

func TestDefaultPredicatePool(t *testing.T) {
	train, _, pool := inducedFixture(t)
	_ = train
	if len(pool) < 6 {
		t.Fatalf("pool too small: %d", len(pool))
	}
	names := map[string]bool{}
	for _, p := range pool {
		names[p.Name] = true
	}
	if !names["jaccard.3g(a.Title, b.Title) >= 0.80"] {
		t.Fatalf("title jaccard missing from pool: %v", names)
	}
	foundBrand := false
	for n := range names {
		if strings.Contains(n, "Brand Name") {
			foundBrand = true
		}
	}
	if !foundBrand {
		t.Fatal("common attribute equality missing from pool")
	}
	for n := range names {
		if strings.Contains(n, "Description") {
			t.Fatal("Description must not enter the pool")
		}
	}
}

func TestNotPredicate(t *testing.T) {
	p := AttrEquals("isbn")
	np := Not(p)
	a := &catalog.Item{ID: "a", Attrs: map[string]string{"isbn": "1"}}
	b := &catalog.Item{ID: "b", Attrs: map[string]string{"isbn": "1"}}
	if np.Eval(a, b) {
		t.Fatal("negation broken")
	}
	if !strings.Contains(np.Name, "NOT (") {
		t.Fatalf("negation name: %s", np.Name)
	}
}

func TestInduceRulesLearnMatching(t *testing.T) {
	train, test, pool := inducedFixture(t)
	rules := InduceRules(train, pool, InduceOptions{})
	if len(rules) == 0 {
		t.Fatal("no rules induced")
	}
	for _, r := range rules {
		if r.Provenance != "crowd-induced" {
			t.Fatalf("provenance missing: %+v", r)
		}
		if len(r.Preds) == 0 {
			t.Fatal("empty conjunction extracted")
		}
	}
	rs := &RuleSet{Rules: rules}
	m := Evaluate(rs, test)
	if m.Precision < 0.85 {
		t.Fatalf("induced precision %.3f too low (FP=%d)", m.Precision, m.FP)
	}
	if m.Recall < 0.5 {
		t.Fatalf("induced recall %.3f too low", m.Recall)
	}
}

func TestInduceRulesReadable(t *testing.T) {
	train, _, pool := inducedFixture(t)
	rules := InduceRules(train, pool, InduceOptions{})
	for _, r := range rules {
		s := r.String()
		if !strings.Contains(s, "=> a ~ b") || !strings.Contains(s, "[") {
			t.Fatalf("induced rule not in the analyst notation: %s", s)
		}
	}
}

func TestInduceFromCrowdLabels(t *testing.T) {
	// End-to-end Corleone flow: crowd labels (noisy), induce, evaluate
	// against the real ground truth.
	train, test, pool := inducedFixture(t)
	cr := crowd.New(crowd.Config{Seed: 7})
	labeled, err := LabelPairs(train, cr)
	if err != nil {
		t.Fatal(err)
	}
	if len(labeled) != len(train) {
		t.Fatalf("labeling truncated: %d", len(labeled))
	}
	// The crowd flips a few labels; count them to confirm noise exists.
	flips := 0
	for i := range labeled {
		if labeled[i].TrueMatch != train[i].TrueMatch {
			flips++
		}
	}
	if flips == 0 {
		t.Log("crowd made no mistakes on this draw (acceptable)")
	}
	rules := InduceRules(labeled, pool, InduceOptions{})
	if len(rules) == 0 {
		t.Fatal("no rules induced from crowd labels")
	}
	m := Evaluate(&RuleSet{Rules: rules}, test)
	if m.Precision < 0.8 || m.Recall < 0.4 {
		t.Fatalf("crowd-label induction too weak: p=%.3f r=%.3f", m.Precision, m.Recall)
	}
}

func TestInduceBudgetExhaustion(t *testing.T) {
	train, _, _ := inducedFixture(t)
	cr := crowd.New(crowd.Config{Seed: 8, Budget: 30, Redundancy: 3})
	labeled, err := LabelPairs(train, cr)
	if err == nil {
		t.Fatal("tiny budget should exhaust")
	}
	if len(labeled) != 10 {
		t.Fatalf("partial labels should be returned: %d", len(labeled))
	}
}

func TestInduceDegenerateInputs(t *testing.T) {
	_, _, pool := inducedFixture(t)
	if rules := InduceRules(nil, pool, InduceOptions{}); rules != nil {
		t.Fatal("no pairs → no rules")
	}
	train, _, _ := inducedFixture(t)
	if rules := InduceRules(train, nil, InduceOptions{}); rules != nil {
		t.Fatal("no pool → no rules")
	}
	// All-negative labels → no positive leaves.
	var negs []Pair
	for _, p := range train {
		if !p.TrueMatch {
			negs = append(negs, p)
		}
	}
	if rules := InduceRules(negs, pool, InduceOptions{}); len(rules) != 0 {
		t.Fatalf("all-negative labels should induce nothing: %d", len(rules))
	}
}

func TestInducedRulesOrderIndependent(t *testing.T) {
	train, test, pool := inducedFixture(t)
	rules := InduceRules(train, pool, InduceOptions{})
	if len(rules) < 2 {
		t.Skip("need at least two rules")
	}
	fwd := &RuleSet{Rules: rules}
	rev := &RuleSet{Rules: []*Rule{}}
	for i := len(rules) - 1; i >= 0; i-- {
		rev.Rules = append(rev.Rules, rules[i])
	}
	for _, p := range test[:200] {
		f, _ := fwd.Apply(p.A, p.B)
		r, _ := rev.Apply(p.A, p.B)
		if f != r {
			t.Fatal("induced rule set order-dependent")
		}
	}
}
