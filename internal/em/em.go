// Package em implements the §6 entity-matching substrate: match rules over
// record pairs, as used by the WalmartLabs product-matching systems. The
// paper's example rule is reproduced verbatim in spirit:
//
//	[a.isbn = b.isbn] ∧ [jaccard_3g(a.title, b.title) ≥ 0.8] ⇒ a ≈ b
//
// A rule is a conjunction of predicates; a rule set matches a pair when any
// active rule does (disjunction of conjunctions), which makes the rule-set
// semantics order-independent by construction — the very design question
// §5.3 poses ("would executing these rules in any order give the same
// matching result?").
package em

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/randx"
	"repro/internal/textvec"
	"repro/internal/tokenize"
)

// Pair is a labeled record pair.
type Pair struct {
	A, B *catalog.Item
	// TrueMatch is the simulation ground truth.
	TrueMatch bool
}

// Predicate is one testable condition over a record pair.
type Predicate struct {
	// Name is a human-readable rendering, e.g. "a.isbn = b.isbn".
	Name string
	Eval func(a, b *catalog.Item) bool
}

// AttrEquals requires both records to carry attr with equal (case-folded)
// values.
func AttrEquals(attr string) Predicate {
	return Predicate{
		Name: fmt.Sprintf("a.%s = b.%s", attr, attr),
		Eval: func(a, b *catalog.Item) bool {
			va, oka := a.Attrs[attr]
			vb, okb := b.Attrs[attr]
			return oka && okb && strings.EqualFold(va, vb)
		},
	}
}

// QGramJaccard requires Jaccard similarity of the attr values' character
// q-grams to reach tau — the paper's jaccard.3g(a.title, b.title) ≥ 0.8.
func QGramJaccard(attr string, q int, tau float64) Predicate {
	return Predicate{
		Name: fmt.Sprintf("jaccard.%dg(a.%s, b.%s) >= %.2f", q, attr, attr, tau),
		Eval: func(a, b *catalog.Item) bool {
			va, oka := a.Attrs[attr]
			vb, okb := b.Attrs[attr]
			if !oka || !okb {
				return false
			}
			return textvec.Jaccard(tokenize.NGrams(va, q), tokenize.NGrams(vb, q)) >= tau
		},
	}
}

// TokenJaccard requires token-level Jaccard of attr values to reach tau.
func TokenJaccard(attr string, tau float64) Predicate {
	return Predicate{
		Name: fmt.Sprintf("jaccard.tok(a.%s, b.%s) >= %.2f", attr, attr, tau),
		Eval: func(a, b *catalog.Item) bool {
			va, oka := a.Attrs[attr]
			vb, okb := b.Attrs[attr]
			if !oka || !okb {
				return false
			}
			return textvec.Jaccard(tokenize.Tokenize(va), tokenize.Tokenize(vb)) >= tau
		},
	}
}

// NumericWithin requires numeric attr values within tol of each other
// ("two books match if they agree on the ISBNs and the number of pages").
func NumericWithin(attr string, tol float64) Predicate {
	return Predicate{
		Name: fmt.Sprintf("|a.%s - b.%s| <= %g", attr, attr, tol),
		Eval: func(a, b *catalog.Item) bool {
			fa, oka := numAttr(a, attr)
			fb, okb := numAttr(b, attr)
			return oka && okb && math.Abs(fa-fb) <= tol
		},
	}
}

func numAttr(it *catalog.Item, attr string) (float64, bool) {
	v, ok := it.Attrs[attr]
	if !ok {
		return 0, false
	}
	fields := strings.Fields(v)
	if len(fields) == 0 {
		return 0, false
	}
	f, err := strconv.ParseFloat(fields[0], 64)
	return f, err == nil
}

// Rule is a conjunction of predicates asserting a match.
type Rule struct {
	ID         string
	Preds      []Predicate
	Provenance string
	Disabled   bool
}

// NewRule builds a rule from predicates.
func NewRule(id string, preds ...Predicate) *Rule {
	return &Rule{ID: id, Preds: preds}
}

// Matches reports whether every predicate holds.
func (r *Rule) Matches(a, b *catalog.Item) bool {
	for _, p := range r.Preds {
		if !p.Eval(a, b) {
			return false
		}
	}
	return len(r.Preds) > 0
}

// String renders the rule in the paper's notation.
func (r *Rule) String() string {
	names := make([]string, len(r.Preds))
	for i, p := range r.Preds {
		names[i] = "[" + p.Name + "]"
	}
	return fmt.Sprintf("%s: %s => a ~ b", r.ID, strings.Join(names, " ^ "))
}

// RuleSet is a disjunction of match rules.
type RuleSet struct {
	Rules []*Rule
}

// Apply reports whether any active rule matches, and which (the first in ID
// order, for deterministic attribution; since the semantics is a
// disjunction, attribution order cannot change the verdict).
func (rs *RuleSet) Apply(a, b *catalog.Item) (bool, string) {
	ids := make([]*Rule, 0, len(rs.Rules))
	for _, r := range rs.Rules {
		if !r.Disabled {
			ids = append(ids, r)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].ID < ids[j].ID })
	for _, r := range ids {
		if r.Matches(a, b) {
			return true, r.ID
		}
	}
	return false, ""
}

// Metrics summarizes rule-set quality on labeled pairs.
type Metrics struct {
	TP, FP, FN, TN int
	Precision      float64
	Recall         float64
	F1             float64
	// PerRule counts matches attributed per rule ID.
	PerRule map[string]int
}

// Evaluate scores the rule set against labeled pairs.
func Evaluate(rs *RuleSet, pairs []Pair) Metrics {
	m := Metrics{PerRule: map[string]int{}}
	for _, p := range pairs {
		matched, ruleID := rs.Apply(p.A, p.B)
		switch {
		case matched && p.TrueMatch:
			m.TP++
		case matched && !p.TrueMatch:
			m.FP++
		case !matched && p.TrueMatch:
			m.FN++
		default:
			m.TN++
		}
		if matched {
			m.PerRule[ruleID]++
		}
	}
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// ---------------------------------------------------------------------------
// Pair generation (the labeled-pair corpus substitute)
// ---------------------------------------------------------------------------

// GeneratePairs builds a labeled pair corpus from catalog items: positives
// are vendor-perturbed duplicates of the same product (tokens dropped,
// modifiers shuffled, head noun swapped for a synonym — what two vendor
// feeds for one product look like); negatives mix hard same-type pairs with
// random cross-type pairs.
func GeneratePairs(cat *catalog.Catalog, rng *randx.Rand, nPos, nNeg int) []Pair {
	items := cat.GenerateBatch(catalog.BatchSpec{Size: nPos + 2*nNeg + 16, Epoch: 0})
	var pairs []Pair
	r := rng.Split("em-pairs")

	for i := 0; i < nPos && i < len(items); i++ {
		a := items[i]
		pairs = append(pairs, Pair{A: a, B: perturb(r, a), TrueMatch: true})
	}

	// Hard negatives: distinct items of the same type.
	byType := map[string][]*catalog.Item{}
	for _, it := range items {
		byType[it.TrueType] = append(byType[it.TrueType], it)
	}
	var typeNames []string
	for t, list := range byType {
		if len(list) >= 2 {
			typeNames = append(typeNames, t)
		}
	}
	sort.Strings(typeNames)
	added := 0
	for added < nNeg/2 && len(typeNames) > 0 {
		list := byType[typeNames[r.Intn(len(typeNames))]]
		i, j := r.Intn(len(list)), r.Intn(len(list))
		if i == j || list[i].ID == list[j].ID {
			continue
		}
		pairs = append(pairs, Pair{A: list[i], B: list[j], TrueMatch: false})
		added++
	}
	// Easy negatives: random cross-type pairs.
	for added < nNeg {
		a := items[r.Intn(len(items))]
		b := items[r.Intn(len(items))]
		if a.ID == b.ID || a.TrueType == b.TrueType {
			continue
		}
		pairs = append(pairs, Pair{A: a, B: b, TrueMatch: false})
		added++
	}
	return pairs
}

// perturb simulates a second vendor's feed for the same product.
func perturb(r *randx.Rand, a *catalog.Item) *catalog.Item {
	tokens := append([]string(nil), a.TitleTokens()...)
	// Drop up to 20% of tokens (never all).
	var kept []string
	for _, tok := range tokens {
		if len(tokens) > 2 && r.Bool(0.2) {
			continue
		}
		kept = append(kept, tok)
	}
	if len(kept) == 0 {
		kept = tokens
	}
	// Occasionally swap two adjacent tokens.
	if len(kept) > 2 && r.Bool(0.5) {
		i := r.Intn(len(kept) - 1)
		kept[i], kept[i+1] = kept[i+1], kept[i]
	}
	b := &catalog.Item{
		ID:       a.ID + "-dup",
		Attrs:    map[string]string{"Title": strings.Join(kept, " ")},
		TrueType: a.TrueType,
		Vendor:   "vendor-dup",
	}
	// Key attributes survive the re-listing; cosmetic ones may be dropped.
	for k, v := range a.Attrs {
		switch k {
		case "Title":
			continue
		case "isbn", "Number of Pages", "Brand Name":
			b.Attrs[k] = v
		default:
			if r.Bool(0.7) {
				b.Attrs[k] = v
			}
		}
	}
	return b
}

// ---------------------------------------------------------------------------
// Blocking
// ---------------------------------------------------------------------------

// Blocker indexes records by their rarest title token so candidate
// generation avoids the full cross product — the standard EM blocking step.
type Blocker struct {
	items   []*catalog.Item
	byToken map[string][]int32
	df      map[string]int
}

// NewBlocker indexes the corpus.
func NewBlocker(items []*catalog.Item) *Blocker {
	b := &Blocker{items: items, byToken: map[string][]int32{}, df: map[string]int{}}
	for i, it := range items {
		seen := map[string]bool{}
		for _, tok := range it.TitleTokens() {
			if !seen[tok] {
				seen[tok] = true
				b.df[tok]++
				b.byToken[tok] = append(b.byToken[tok], int32(i))
			}
		}
	}
	return b
}

// Candidates returns corpus indices sharing the query's rarest token(s); k
// rare tokens are used (default 2 when k<=0).
func (b *Blocker) Candidates(it *catalog.Item, k int) []int32 {
	if k <= 0 {
		k = 2
	}
	tokens := append([]string(nil), tokenize.NormalizeTokens(it.TitleTokens())...)
	sort.Slice(tokens, func(i, j int) bool {
		di, dj := b.df[tokens[i]], b.df[tokens[j]]
		if di != dj {
			return di < dj
		}
		return tokens[i] < tokens[j]
	})
	seen := map[int32]bool{}
	var out []int32
	for i := 0; i < len(tokens) && i < k; i++ {
		for _, idx := range b.byToken[tokens[i]] {
			if !seen[idx] {
				seen[idx] = true
				out = append(out, idx)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
