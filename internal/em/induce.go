package em

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/crowd"
)

// This file implements the Corleone-style [18] path the paper describes for
// EM rules: "rules can be manually created by domain analysts, CS
// developers, and the crowd". The crowd labels record pairs; a shallow
// decision tree over a pool of match predicates is learned from the labels;
// and the tree's high-purity positive paths are extracted back into the
// analyst rule language — conjunctions of (possibly negated) predicates —
// where they are managed, evaluated and maintained like any hand-written
// rule.

// Not negates a predicate, keeping the rule language closed under the
// tree-path extraction.
func Not(p Predicate) Predicate {
	return Predicate{
		Name: "NOT (" + p.Name + ")",
		Eval: func(a, b *catalog.Item) bool { return !p.Eval(a, b) },
	}
}

// DefaultPredicatePool builds the standard candidate-predicate pool over a
// pair sample: title q-gram Jaccard at several thresholds, title token
// Jaccard, and equality on every attribute carried by at least minAttrFrac
// of the sampled records on both sides.
func DefaultPredicatePool(pairs []Pair, minAttrFrac float64) []Predicate {
	if minAttrFrac <= 0 {
		minAttrFrac = 0.2
	}
	pool := []Predicate{
		QGramJaccard("Title", 3, 0.4),
		QGramJaccard("Title", 3, 0.6),
		QGramJaccard("Title", 3, 0.8),
		TokenJaccard("Title", 0.5),
		TokenJaccard("Title", 0.7),
	}
	counts := map[string]int{}
	for _, p := range pairs {
		for attr := range p.A.Attrs {
			if _, ok := p.B.Attrs[attr]; ok {
				counts[attr]++
			}
		}
	}
	var attrs []string
	for attr, n := range counts {
		if attr == "Title" || attr == "Description" {
			continue
		}
		if float64(n) >= minAttrFrac*float64(len(pairs)) {
			attrs = append(attrs, attr)
		}
	}
	sort.Strings(attrs)
	for _, attr := range attrs {
		pool = append(pool, AttrEquals(attr))
	}
	return pool
}

// LabelPairs asks the crowd to verify each pair, returning pairs whose
// TrueMatch field carries the (noisy) crowd answer — the training labels
// Corleone works from. Budget exhaustion truncates the output.
func LabelPairs(pairs []Pair, cr *crowd.Crowd) ([]Pair, error) {
	out := make([]Pair, 0, len(pairs))
	for _, p := range pairs {
		ans, err := cr.VerifyClaim(p.TrueMatch)
		if err != nil {
			return out, err
		}
		out = append(out, Pair{A: p.A, B: p.B, TrueMatch: ans})
	}
	return out, nil
}

// InduceOptions parameterizes rule induction.
type InduceOptions struct {
	MaxDepth  int     // tree depth bound (default 3)
	MinLeaf   int     // minimum labeled pairs per leaf (default 8)
	MinPurity float64 // minimum positive fraction for an extracted leaf (default 0.95)
}

func (o InduceOptions) withDefaults() InduceOptions {
	if o.MaxDepth == 0 {
		o.MaxDepth = 3
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 8
	}
	if o.MinPurity == 0 {
		o.MinPurity = 0.95
	}
	return o
}

// InduceRules learns a depth-bounded decision tree over the predicate pool
// from labeled pairs and extracts every high-purity positive leaf as a
// conjunctive match rule. Rules are named induced-1, induced-2, … in
// extraction order and carry Provenance "crowd-induced".
func InduceRules(labeled []Pair, pool []Predicate, opts InduceOptions) []*Rule {
	opts = opts.withDefaults()
	if len(labeled) == 0 || len(pool) == 0 {
		return nil
	}
	// Precompute the feature matrix.
	features := make([][]bool, len(labeled))
	for i, p := range labeled {
		row := make([]bool, len(pool))
		for j, pred := range pool {
			row[j] = pred.Eval(p.A, p.B)
		}
		features[i] = row
	}
	idx := make([]int, len(labeled))
	for i := range idx {
		idx[i] = i
	}
	var rules []*Rule
	var path []Predicate
	var grow func(rows []int, depth int)
	grow = func(rows []int, depth int) {
		pos := 0
		for _, r := range rows {
			if labeled[r].TrueMatch {
				pos++
			}
		}
		purity := float64(pos) / float64(len(rows))
		// Extract a rule when the leaf is pure-positive enough and carries a
		// non-empty conjunction.
		stop := depth >= opts.MaxDepth || pos == 0 || pos == len(rows) || len(rows) < 2*opts.MinLeaf
		if stop {
			if purity >= opts.MinPurity && len(path) > 0 && len(rows) >= opts.MinLeaf {
				r := NewRule(fmt.Sprintf("induced-%d", len(rules)+1), append([]Predicate(nil), path...)...)
				r.Provenance = "crowd-induced"
				rules = append(rules, r)
			}
			return
		}
		best, bestGain := -1, 0.0
		for j := range pool {
			gain := infoGain(labeled, features, rows, j)
			if gain > bestGain+1e-12 {
				best, bestGain = j, gain
			}
		}
		if best < 0 {
			if purity >= opts.MinPurity && len(path) > 0 && len(rows) >= opts.MinLeaf {
				r := NewRule(fmt.Sprintf("induced-%d", len(rules)+1), append([]Predicate(nil), path...)...)
				r.Provenance = "crowd-induced"
				rules = append(rules, r)
			}
			return
		}
		var yes, no []int
		for _, r := range rows {
			if features[r][best] {
				yes = append(yes, r)
			} else {
				no = append(no, r)
			}
		}
		if len(yes) >= opts.MinLeaf {
			path = append(path, pool[best])
			grow(yes, depth+1)
			path = path[:len(path)-1]
		}
		if len(no) >= opts.MinLeaf {
			path = append(path, Not(pool[best]))
			grow(no, depth+1)
			path = path[:len(path)-1]
		}
	}
	grow(idx, 0)
	return rules
}

// infoGain computes the information gain of splitting rows on predicate j.
func infoGain(labeled []Pair, features [][]bool, rows []int, j int) float64 {
	entropy := func(pos, n int) float64 {
		if n == 0 || pos == 0 || pos == n {
			return 0
		}
		p := float64(pos) / float64(n)
		return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
	}
	var pos, yesN, yesPos, noN, noPos int
	for _, r := range rows {
		match := labeled[r].TrueMatch
		if match {
			pos++
		}
		if features[r][j] {
			yesN++
			if match {
				yesPos++
			}
		} else {
			noN++
			if match {
				noPos++
			}
		}
	}
	n := len(rows)
	base := entropy(pos, n)
	split := float64(yesN)/float64(n)*entropy(yesPos, yesN) +
		float64(noN)/float64(n)*entropy(noPos, noN)
	return base - split
}
