package em

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/randx"
)

func bookPair(isbnA, isbnB, titleA, titleB, pagesA, pagesB string) (a, b *catalog.Item) {
	a = &catalog.Item{ID: "a", Attrs: map[string]string{
		"Title": titleA, "isbn": isbnA, "Number of Pages": pagesA,
	}}
	b = &catalog.Item{ID: "b", Attrs: map[string]string{
		"Title": titleB, "isbn": isbnB, "Number of Pages": pagesB,
	}}
	return a, b
}

func TestPaperBookRule(t *testing.T) {
	rule := NewRule("book-rule",
		AttrEquals("isbn"),
		QGramJaccard("Title", 3, 0.8),
	)
	a, b := bookPair("9781", "9781", "the long afternoon novel", "the long afternoon novel", "300", "300")
	if !rule.Matches(a, b) {
		t.Fatal("identical books should match")
	}
	// Same ISBN but very different titles: two different books can still
	// match on ISBNs, which is why the title predicate exists.
	a, b = bookPair("9781", "9781", "the long afternoon", "zebra cookbook deluxe", "300", "290")
	if rule.Matches(a, b) {
		t.Fatal("title jaccard should block the coincidental isbn")
	}
	a, b = bookPair("9781", "9782", "the long afternoon", "the long afternoon", "300", "300")
	if rule.Matches(a, b) {
		t.Fatal("different isbn must not match")
	}
}

func TestPaperPagesRule(t *testing.T) {
	// "two books match if they agree on the ISBNs and the number of pages".
	rule := NewRule("isbn-pages", AttrEquals("isbn"), NumericWithin("Number of Pages", 0))
	a, b := bookPair("9781", "9781", "x", "y", "300", "300")
	if !rule.Matches(a, b) {
		t.Fatal("isbn+pages should match")
	}
	a, b = bookPair("9781", "9781", "x", "y", "300", "301")
	if rule.Matches(a, b) {
		t.Fatal("page mismatch must not match at tolerance 0")
	}
}

func TestPredicateMissingAttrs(t *testing.T) {
	a := &catalog.Item{ID: "a", Attrs: map[string]string{"Title": "x"}}
	b := &catalog.Item{ID: "b", Attrs: map[string]string{"Title": "x"}}
	if AttrEquals("isbn").Eval(a, b) {
		t.Fatal("missing attrs must not satisfy equality")
	}
	if NumericWithin("Number of Pages", 5).Eval(a, b) {
		t.Fatal("missing attrs must not satisfy numeric predicate")
	}
	if QGramJaccard("isbn", 3, 0.5).Eval(a, b) {
		t.Fatal("missing attrs must not satisfy jaccard")
	}
}

func TestEmptyRuleNeverMatches(t *testing.T) {
	r := NewRule("empty")
	a := &catalog.Item{ID: "a", Attrs: map[string]string{"Title": "x"}}
	if r.Matches(a, a) {
		t.Fatal("a rule with no predicates must not match everything")
	}
}

func TestRuleString(t *testing.T) {
	rule := NewRule("book-rule", AttrEquals("isbn"), QGramJaccard("Title", 3, 0.8))
	s := rule.String()
	if !strings.Contains(s, "a.isbn = b.isbn") || !strings.Contains(s, "jaccard.3g") || !strings.Contains(s, "^") {
		t.Fatalf("paper notation broken: %s", s)
	}
}

func TestRuleSetDisjunctionAndDisable(t *testing.T) {
	rs := &RuleSet{Rules: []*Rule{
		NewRule("r1", AttrEquals("isbn")),
		NewRule("r2", TokenJaccard("Title", 0.9)),
	}}
	a, b := bookPair("9781", "9781", "totally different", "words entirely", "1", "2")
	ok, id := rs.Apply(a, b)
	if !ok || id != "r1" {
		t.Fatalf("disjunction failed: %v %q", ok, id)
	}
	rs.Rules[0].Disabled = true
	if ok, _ := rs.Apply(a, b); ok {
		t.Fatal("disabled rule still fired")
	}
}

func TestRuleSetOrderIndependence(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 101, NumTypes: 30})
	pairs := GeneratePairs(cat, randx.New(1), 150, 150)
	r1 := NewRule("r1", AttrEquals("isbn"), QGramJaccard("Title", 3, 0.6))
	r2 := NewRule("r2", TokenJaccard("Title", 0.75), AttrEquals("Brand Name"))
	r3 := NewRule("r3", QGramJaccard("Title", 3, 0.9))
	fwd := &RuleSet{Rules: []*Rule{r1, r2, r3}}
	rev := &RuleSet{Rules: []*Rule{r3, r2, r1}}
	for _, p := range pairs {
		f, _ := fwd.Apply(p.A, p.B)
		r, _ := rev.Apply(p.A, p.B)
		if f != r {
			t.Fatalf("verdict depends on rule order for pair %s/%s", p.A.ID, p.B.ID)
		}
	}
}

func TestGeneratePairsShape(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 102, NumTypes: 30})
	pairs := GeneratePairs(cat, randx.New(2), 200, 200)
	pos, neg := 0, 0
	for _, p := range pairs {
		if p.TrueMatch {
			pos++
			if p.A.TrueType != p.B.TrueType {
				t.Fatal("positive pair with different true types")
			}
		} else {
			neg++
			if p.A.ID == p.B.ID {
				t.Fatal("negative pair of identical records")
			}
		}
	}
	if pos != 200 || neg != 200 {
		t.Fatalf("pair counts: %d pos, %d neg", pos, neg)
	}
}

func TestMatchingQuality(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 103, NumTypes: 30})
	pairs := GeneratePairs(cat, randx.New(3), 400, 400)
	rs := &RuleSet{Rules: []*Rule{
		NewRule("isbn-title", AttrEquals("isbn"), QGramJaccard("Title", 3, 0.5)),
		NewRule("title-brand", TokenJaccard("Title", 0.6), AttrEquals("Brand Name")),
		NewRule("title-high", QGramJaccard("Title", 3, 0.8)),
	}}
	m := Evaluate(rs, pairs)
	if m.Precision < 0.9 {
		t.Fatalf("EM precision %.3f < 0.9 (FP=%d)", m.Precision, m.FP)
	}
	if m.Recall < 0.5 {
		t.Fatalf("EM recall %.3f < 0.5 (FN=%d)", m.Recall, m.FN)
	}
	if m.F1 <= 0 {
		t.Fatal("F1 not computed")
	}
	total := 0
	for _, n := range m.PerRule {
		total += n
	}
	if total != m.TP+m.FP {
		t.Fatalf("per-rule attribution %d != matches %d", total, m.TP+m.FP)
	}
}

func TestBlockerReducesCandidates(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 104, NumTypes: 40})
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 3000, Epoch: 0})
	b := NewBlocker(items)
	totalCands := 0
	probe := items[:100]
	for _, it := range probe {
		cands := b.Candidates(it, 2)
		totalCands += len(cands)
		// The item itself must be among its own candidates (no lost matches
		// for self-evidently matchable records).
		foundSelf := false
		for _, idx := range cands {
			if items[idx].ID == it.ID {
				foundSelf = true
				break
			}
		}
		if !foundSelf {
			t.Fatalf("blocking lost the record itself for %q", it.Title())
		}
	}
	avg := float64(totalCands) / float64(len(probe))
	if avg > float64(len(items))/4 {
		t.Fatalf("blocking not selective: avg %.0f of %d", avg, len(items))
	}
}

func TestBlockerRecallOnPerturbedDuplicates(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 105, NumTypes: 40})
	pairs := GeneratePairs(cat, randx.New(5), 200, 0)
	var corpus []*catalog.Item
	for _, p := range pairs {
		corpus = append(corpus, p.A)
	}
	b := NewBlocker(corpus)
	found := 0
	for i, p := range pairs {
		for _, idx := range b.Candidates(p.B, 3) {
			if int(idx) == i {
				found++
				break
			}
		}
	}
	if float64(found)/float64(len(pairs)) < 0.8 {
		t.Fatalf("blocking recall too low: %d/%d", found, len(pairs))
	}
}
