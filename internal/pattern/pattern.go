// Package pattern implements the analyst rule-pattern language of the paper:
// the "relatively simple regexes" applied to product titles by whitelist and
// blacklist rules (§3.3), including every construct appearing in the paper's
// examples:
//
//	rings?
//	diamond.*trio sets?
//	(motor | engine) oils?
//	(motor | engine | \syn) oils?                          (§5.1 tool input)
//	(abrasive|sand(er|ing))[ -](wheels?|discs?)
//	(motor | engine | auto(motive)? | car | ... | pick[ -]?up) (oil | lubricant)s?
//	denim.*jeans?
//	(\w+) oils?   /   (\w+\s+\w+) oils?                    (generalized regexes)
//
// Rather than compiling to character-level regexp, patterns are parsed into a
// token-level AST and matched against tokenized titles. Matching a pattern is
// therefore alignment of token sequences, which is what makes the static
// analyses the paper's §4 maintenance agenda needs — subsumption, overlap,
// required-token extraction for rule indexing (§5.3) — tractable.
//
// Semantics. A pattern is a sequence of elements separated either by
// adjacency (whitespace, \s+, or a separator class such as [ -]) or by a gap
// (.*, matching any number of intervening tokens). Matching is unanchored:
// the pattern may match anywhere inside the title, exactly like the paper's
// "title matches the regular expression r" reading. Elements are:
//
//   - literal alternatives:  rings?  →  {ring, rings};  sand(er|ing)  →
//     {sander, sanding};  pick[ -]?up  →  {pickup, "pick up"}  (alternatives
//     may span several tokens);
//   - groups:  (a | b c | d)  with each alternative a token sequence;
//     a trailing ? makes the whole element optional;
//   - wildcards:  \w+  matches exactly one token;
//   - the \syn slot (§5.1): inside a group, marks the disjunction the
//     synonym tool must expand; the group's other alternatives are the
//     "golden synonyms".
package pattern

import (
	"fmt"
	"strings"
)

// Kind identifies the element variants of the pattern AST.
type Kind int

const (
	// KindLit is a set of literal token-sequence alternatives.
	KindLit Kind = iota
	// KindGap matches zero or more arbitrary tokens (the .* separator).
	KindGap
	// KindAny matches exactly one arbitrary token (\w+).
	KindAny
	// KindSyn is the §5.1 synonym slot; Alts holds the golden synonyms.
	KindSyn
)

// Elem is one element of a parsed pattern.
type Elem struct {
	Kind Kind
	// Alts are the literal alternatives (each a token sequence) for KindLit,
	// or the golden-synonym alternatives for KindSyn.
	Alts [][]string
	// Optional marks a (…)? element that may be skipped entirely.
	Optional bool
}

// Pattern is a parsed, matchable rule pattern.
type Pattern struct {
	raw   string
	elems []Elem
}

// maxAlternatives caps the cross-product expansion of a single word unit or
// group so that pathological inputs fail loudly at parse time rather than
// exploding at match time.
const maxAlternatives = 256

// Raw returns the original pattern source text.
func (p *Pattern) Raw() string { return p.raw }

// Elems exposes the parsed element sequence (read-only by convention).
func (p *Pattern) Elems() []Elem { return p.elems }

// HasSyn reports whether the pattern contains a \syn slot.
func (p *Pattern) HasSyn() bool {
	for _, e := range p.elems {
		if e.Kind == KindSyn {
			return true
		}
	}
	return false
}

// SynGolden returns the golden-synonym alternatives of the first \syn slot,
// or nil if the pattern has none.
func (p *Pattern) SynGolden() [][]string {
	for _, e := range p.elems {
		if e.Kind == KindSyn {
			return e.Alts
		}
	}
	return nil
}

// String renders a canonical form of the pattern (not necessarily the
// original source, but re-parseable for the supported dialect).
func (p *Pattern) String() string {
	var parts []string
	for _, e := range p.elems {
		switch e.Kind {
		case KindGap:
			parts = append(parts, ".*")
		case KindAny:
			parts = append(parts, `\w+`)
		case KindSyn:
			alts := make([]string, 0, len(e.Alts)+1)
			for _, a := range e.Alts {
				alts = append(alts, strings.Join(a, " "))
			}
			alts = append(alts, `\syn`)
			parts = append(parts, "("+strings.Join(alts, " | ")+")")
		case KindLit:
			alts := make([]string, 0, len(e.Alts))
			for _, a := range e.Alts {
				alts = append(alts, strings.Join(a, " "))
			}
			s := "(" + strings.Join(alts, " | ") + ")"
			if len(e.Alts) == 1 && len(e.Alts[0]) == 1 && !e.Optional {
				s = e.Alts[0][0]
			}
			if e.Optional {
				s += "?"
			}
			parts = append(parts, s)
		}
	}
	return strings.Join(parts, " ")
}

// WithSynExpanded returns a copy of the pattern in which the \syn slot has
// been replaced by a literal group containing the golden synonyms plus the
// accepted synonyms found by the tool — the "expanded rule" the §5.1 tool
// returns to the analyst. Patterns without a slot are returned unchanged.
func (p *Pattern) WithSynExpanded(synonyms [][]string) *Pattern {
	out := &Pattern{raw: p.raw + " (expanded)"}
	out.elems = make([]Elem, len(p.elems))
	copy(out.elems, p.elems)
	for i, e := range out.elems {
		if e.Kind != KindSyn {
			continue
		}
		alts := make([][]string, 0, len(e.Alts)+len(synonyms))
		seen := map[string]bool{}
		for _, a := range append(append([][]string{}, e.Alts...), synonyms...) {
			key := strings.Join(a, " ")
			if key == "" || seen[key] {
				continue
			}
			seen[key] = true
			alts = append(alts, a)
		}
		out.elems[i] = Elem{Kind: KindLit, Alts: alts}
		break
	}
	out.raw = out.String()
	return out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

type parser struct {
	src []rune
	pos int
}

// Parse compiles the pattern dialect described in the package comment.
func Parse(src string) (*Pattern, error) {
	p := &parser{src: []rune(strings.TrimSpace(src))}
	if len(p.src) == 0 {
		return nil, fmt.Errorf("pattern: empty pattern")
	}
	elems, err := p.parseSeq(false)
	if err != nil {
		return nil, fmt.Errorf("pattern: %q: %w", src, err)
	}
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("pattern: %q: unexpected %q at offset %d", src, string(p.src[p.pos]), p.pos)
	}
	elems = normalizeElems(elems)
	if len(elems) == 0 {
		return nil, fmt.Errorf("pattern: %q: no matchable elements", src)
	}
	synCount := 0
	allOptional := true
	for _, e := range elems {
		if e.Kind == KindSyn {
			synCount++
		}
		if !e.Optional && e.Kind != KindGap {
			allOptional = false
		}
	}
	if synCount > 1 {
		// The §5.1 tool expands one disjunction at a time.
		return nil, fmt.Errorf("pattern: %q: multiple \\syn slots are not supported", src)
	}
	if allOptional {
		return nil, fmt.Errorf("pattern: %q: pattern matches everything (all elements optional)", src)
	}
	return &Pattern{raw: src, elems: elems}, nil
}

// MustParse is Parse for patterns known good at compile time; it panics on
// error and is intended for tests, examples and built-in dictionaries.
func MustParse(src string) *Pattern {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// normalizeElems collapses runs of consecutive gaps and strips leading and
// trailing gaps (matching is unanchored anyway, so they are redundant).
func normalizeElems(elems []Elem) []Elem {
	out := elems[:0]
	for _, e := range elems {
		if e.Kind == KindGap && len(out) > 0 && out[len(out)-1].Kind == KindGap {
			continue
		}
		out = append(out, e)
	}
	for len(out) > 0 && out[0].Kind == KindGap {
		out = out[1:]
	}
	for len(out) > 0 && out[len(out)-1].Kind == KindGap {
		out = out[:len(out)-1]
	}
	return out
}

// parseSeq parses a sequence of elements until end of input or, when
// inGroup, until a top-level '|' or ')'.
func (p *parser) parseSeq(inGroup bool) ([]Elem, error) {
	var elems []Elem
	for p.pos < len(p.src) {
		r := p.src[p.pos]
		switch {
		case r == ' ' || r == '\t':
			p.pos++ // adjacency separator
		case inGroup && (r == '|' || r == ')'):
			return elems, nil
		case r == ')' || r == '|':
			return nil, fmt.Errorf("unexpected %q at offset %d", string(r), p.pos)
		case r == '.':
			if !p.eat(".*") {
				return nil, fmt.Errorf("expected .* at offset %d", p.pos)
			}
			elems = append(elems, Elem{Kind: KindGap})
		case r == '\\':
			e, err := p.parseEscape()
			if err != nil {
				return nil, err
			}
			if e != nil {
				elems = append(elems, *e)
			}
		case r == '(':
			es, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			// A literal, non-optional group immediately followed by word
			// characters is the head of a word unit: (oil | lubricant)s?
			// expands to {oil, oils, lubricant, lubricants}. A following
			// separator class ((abrasive|…)[ -](wheels?|…)) is NOT part of
			// the word: it separates two elements, which keeps subsumption
			// analysis element-wise.
			if len(es) == 1 && es[0].Kind == KindLit && !es[0].Optional &&
				p.pos < len(p.src) && isWordRune(p.src[p.pos]) {
				e, err := p.parseWordUnit(es[0].Alts)
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				continue
			}
			elems = append(elems, es...)
		case r == '[':
			// A bare separator class between elements is an adjacency
			// separator (e.g. the [ -] in (abrasive|…)[ -](wheels?|…)).
			if err := p.parseSeparatorClass(); err != nil {
				return nil, err
			}
		case isWordRune(r):
			e, err := p.parseWordUnit(nil)
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		default:
			return nil, fmt.Errorf("unexpected %q at offset %d", string(r), p.pos)
		}
	}
	if inGroup {
		return nil, fmt.Errorf("unterminated group")
	}
	return elems, nil
}

// parseEscape handles \w+, \s+ and \syn at sequence level.
func (p *parser) parseEscape() (*Elem, error) {
	switch {
	case p.eat(`\w+`):
		return &Elem{Kind: KindAny}, nil
	case p.eat(`\s+`):
		return nil, nil // adjacency separator
	case p.eat(`\syn`):
		return &Elem{Kind: KindSyn}, nil
	default:
		return nil, fmt.Errorf("unsupported escape at offset %d", p.pos)
	}
}

// parseSeparatorClass consumes a character class like [ -] (optionally
// followed by ?) that contains only token-separator characters. In token
// space such a class is pure adjacency: the tokenizer has already split on
// those characters.
func (p *parser) parseSeparatorClass() error {
	start := p.pos
	p.pos++ // '['
	for p.pos < len(p.src) && p.src[p.pos] != ']' {
		r := p.src[p.pos]
		if !isSeparatorRune(r) {
			return fmt.Errorf("character class at offset %d contains non-separator %q (only separator classes such as [ -] are supported)", start, string(r))
		}
		p.pos++
	}
	if p.pos >= len(p.src) {
		return fmt.Errorf("unterminated character class at offset %d", start)
	}
	p.pos++    // ']'
	p.eat("?") // optional separator is still adjacency in token space
	return nil
}

// parseGroup parses ( alt | alt | … ) with an optional trailing ?. It
// usually yields a single element, but a wildcard group such as (\w+) or
// (\w+\s+\w+) — the generalized regexes of §5.1 — expands to a run of
// KindAny elements.
func (p *parser) parseGroup() ([]Elem, error) {
	p.pos++ // '('
	var alts [][]string
	var wildcards []Elem
	syn := false
	nAlternatives := 0
	for {
		seq, err := p.parseSeq(true)
		if err != nil {
			return nil, err
		}
		nAlternatives++
		if allAny(seq) {
			wildcards = seq
		} else {
			altSeqs, isSyn, err := flattenAlternative(seq)
			if err != nil {
				return nil, err
			}
			if isSyn {
				syn = true
			} else {
				alts = append(alts, altSeqs...)
				if len(alts) > maxAlternatives {
					return nil, fmt.Errorf("group expands to more than %d alternatives", maxAlternatives)
				}
			}
		}
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("unterminated group")
		}
		if p.src[p.pos] == '|' {
			p.pos++
			continue
		}
		p.pos++ // ')'
		break
	}
	if wildcards != nil {
		if nAlternatives > 1 {
			return nil, fmt.Errorf("wildcard groups cannot be mixed with other alternatives")
		}
		if p.eat("?") {
			return nil, fmt.Errorf("wildcard groups cannot be optional")
		}
		return wildcards, nil
	}
	e := Elem{Kind: KindLit, Alts: dedupeAlts(alts)}
	if syn {
		e.Kind = KindSyn
	}
	if p.eat("?") {
		if syn {
			return nil, fmt.Errorf("\\syn slot cannot be optional")
		}
		e.Optional = true
	}
	if !syn && len(e.Alts) == 0 {
		return nil, fmt.Errorf("empty group")
	}
	return []Elem{e}, nil
}

// allAny reports whether seq is a non-empty run of \w+ wildcards.
func allAny(seq []Elem) bool {
	if len(seq) == 0 {
		return false
	}
	for _, e := range seq {
		if e.Kind != KindAny {
			return false
		}
	}
	return true
}

// flattenAlternative converts one group alternative — parsed as a sequence of
// elements — into literal token-sequence alternatives. An alternative that is
// exactly the \syn marker flags the group as a synonym slot. Alternatives
// must be purely literal: gaps or wildcards inside a group are outside the
// analyst dialect and rejected.
func flattenAlternative(seq []Elem) (alts [][]string, isSyn bool, err error) {
	if len(seq) == 1 && seq[0].Kind == KindSyn {
		return nil, true, nil
	}
	if len(seq) == 0 {
		return nil, false, fmt.Errorf("empty group alternative")
	}
	acc := [][]string{nil}
	for _, e := range seq {
		if e.Kind != KindLit {
			return nil, false, fmt.Errorf("group alternatives must be literal (no gaps, wildcards or nested \\syn)")
		}
		var next [][]string
		for _, prefix := range acc {
			if e.Optional {
				next = append(next, prefix)
			}
			for _, alt := range e.Alts {
				combined := make([]string, 0, len(prefix)+len(alt))
				combined = append(combined, prefix...)
				combined = append(combined, alt...)
				next = append(next, combined)
			}
		}
		if len(next) > maxAlternatives {
			return nil, false, fmt.Errorf("group alternative expands to more than %d variants", maxAlternatives)
		}
		acc = next
	}
	for _, a := range acc {
		if len(a) > 0 {
			alts = append(alts, a)
		}
	}
	if len(alts) == 0 {
		return nil, false, fmt.Errorf("group alternative is empty after expansion")
	}
	return alts, false, nil
}

// parseWordUnit parses a maximal run of word characters interleaved with
// regex decorations that stay within one "word": optional last characters
// (rings?), embedded groups (sand(er|ing), auto(motive)?), and optional
// separator classes (pick[ -]?up). It expands the unit into literal
// token-sequence alternatives. initial seeds the expansion with alternatives
// already parsed (a group head such as (oil | lubricant) in
// (oil | lubricant)s?); nil starts a fresh word.
func (p *parser) parseWordUnit(initial [][]string) (Elem, error) {
	// variants holds partially built alternatives; the last token of each
	// variant is "open" for further concatenation.
	variants := [][]string{{""}}
	if initial != nil {
		variants = make([][]string, len(initial))
		for i, alt := range initial {
			variants[i] = cloneVariant(alt)
		}
	}
	appendRune := func(r rune) {
		for _, v := range variants {
			v[len(v)-1] += string(lowerRune(r))
		}
	}
	for p.pos < len(p.src) {
		r := p.src[p.pos]
		switch {
		case isWordRune(r):
			p.pos++
			// Optional last character: x? keeps or drops x.
			if p.pos < len(p.src) && p.src[p.pos] == '?' {
				p.pos++
				var next [][]string
				for _, v := range variants {
					withOut := cloneVariant(v)
					next = append(next, withOut)
					with := cloneVariant(v)
					with[len(with)-1] += string(lowerRune(r))
					next = append(next, with)
				}
				variants = capVariants(next)
				if variants == nil {
					return Elem{}, fmt.Errorf("word unit expands to more than %d variants", maxAlternatives)
				}
				continue
			}
			appendRune(r)
		case r == '(':
			subs, err := p.parseGroup()
			if err != nil {
				return Elem{}, err
			}
			if len(subs) != 1 || subs[0].Kind != KindLit {
				return Elem{}, fmt.Errorf("only literal groups can be embedded in a word")
			}
			sub := subs[0]
			var next [][]string
			for _, v := range variants {
				if sub.Optional {
					next = append(next, cloneVariant(v))
				}
				for _, alt := range sub.Alts {
					nv := cloneVariant(v)
					// First token of alt concatenates onto the open token;
					// the rest become new tokens.
					nv[len(nv)-1] += alt[0]
					nv = append(nv, alt[1:]...)
					next = append(next, nv)
				}
			}
			variants = capVariants(next)
			if variants == nil {
				return Elem{}, fmt.Errorf("word unit expands to more than %d variants", maxAlternatives)
			}
		case r == '[':
			// Separator class inside a word: pick[ -]up splits the word;
			// pick[ -]?up yields both the split and the joined form.
			start := p.pos
			if err := p.parseSeparatorClass(); err != nil {
				return Elem{}, err
			}
			optional := p.src[p.pos-1] == '?'
			_ = start
			var next [][]string
			for _, v := range variants {
				split := cloneVariant(v)
				split = append(split, "")
				next = append(next, split)
				if optional {
					next = append(next, cloneVariant(v)) // joined form
				}
			}
			variants = capVariants(next)
			if variants == nil {
				return Elem{}, fmt.Errorf("word unit expands to more than %d variants", maxAlternatives)
			}
		default:
			goto done
		}
	}
done:
	var alts [][]string
	for _, v := range variants {
		clean := make([]string, 0, len(v))
		for _, tok := range v {
			if tok != "" {
				clean = append(clean, tok)
			}
		}
		if len(clean) > 0 {
			alts = append(alts, clean)
		}
	}
	if len(alts) == 0 {
		return Elem{}, fmt.Errorf("empty word unit at offset %d", p.pos)
	}
	return Elem{Kind: KindLit, Alts: dedupeAlts(alts)}, nil
}

func cloneVariant(v []string) []string {
	out := make([]string, len(v))
	copy(out, v)
	return out
}

func capVariants(vs [][]string) [][]string {
	if len(vs) > maxAlternatives {
		return nil
	}
	return vs
}

func dedupeAlts(alts [][]string) [][]string {
	seen := make(map[string]bool, len(alts))
	out := alts[:0]
	for _, a := range alts {
		key := strings.Join(a, "\x00")
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, a)
	}
	return out
}

// eat consumes the literal string s if it is next in the input.
func (p *parser) eat(s string) bool {
	if p.pos+len(s) > len(p.src) {
		return false
	}
	if string(p.src[p.pos:p.pos+len(s)]) != s {
		return false
	}
	p.pos += len(s)
	return true
}

func isWordRune(r rune) bool {
	return r == '_' ||
		(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') ||
		r > 127 // be permissive about non-ASCII letters
}

func isSeparatorRune(r rune) bool {
	switch r {
	case ' ', '-', '_', '/', ',', '.':
		return true
	}
	return false
}

func lowerRune(r rune) rune {
	if r >= 'A' && r <= 'Z' {
		return r + ('a' - 'A')
	}
	return r
}
