package pattern

import (
	"testing"

	"repro/internal/tokenize"
)

// FuzzParseRule drives arbitrary byte soup through the rule-pattern parser —
// the path every analyst-authored rule takes on its way into the rulebase
// (§3.3) — and checks three invariants:
//
//  1. Parse never panics: it either returns a pattern or an error.
//  2. A successfully parsed pattern never panics when matched against an
//     arbitrary tokenized title.
//  3. The canonical form round-trips: String() must itself parse, and the
//     reparsed pattern must agree with the original on the fuzzed title.
//     (Canonical text is what audit logs and the §5.1 synonym tool consume,
//     so a canonical form that fails to reparse would corrupt maintenance.)
func FuzzParseRule(f *testing.F) {
	seeds := []string{
		"rings?",
		"diamond.*trio sets?",
		"(motor | engine) oils?",
		"(motor | engine | \\syn) oils?",
		"(abrasive|sand(er|ing))[ -](wheels?|discs?)",
		"pick[ -]?up (oil | lubricant)s?",
		"(\\w+) oils?",
		"(\\w+\\s+\\w+) oils?",
		"denim.*jeans?",
		"a(b|c)?d",
		"((a|b) (c|d))?e",
		"\\s+",
		"(((((x)))))",
		"a|b|c|d|e|f|g|h",
		"[-- ]bad[class",
		"(unclosed",
		"",
		"   ",
		".*",
		"\\syn",
	}
	titles := []string{
		"acme motor oils",
		"pick up lubricant s",
		"diamond ring trio set",
		"",
	}
	for _, s := range seeds {
		for _, ttl := range titles {
			f.Add(s, ttl)
		}
	}
	f.Fuzz(func(t *testing.T, src, title string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		if p == nil {
			t.Fatalf("Parse(%q) returned nil pattern and nil error", src)
		}
		toks := tokenize.Tokenize(title)
		got := p.Match(toks)

		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form does not reparse: Parse(%q)=%v (original %q)",
				canon, err, src)
		}
		if got2 := p2.Match(toks); got2 != got {
			t.Fatalf("canonical form disagrees: %q matched %v, reparsed %q matched %v on %q",
				src, got, canon, got2, title)
		}
		// Canonicalization must be a fixpoint: String of the reparse equals
		// the first canonical form.
		if canon2 := p2.String(); canon2 != canon {
			t.Fatalf("canonical form not stable: %q -> %q -> %q", src, canon, canon2)
		}
	})
}
