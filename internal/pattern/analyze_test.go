package pattern

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/randx"
	"repro/internal/tokenize"
)

func TestRequiredAlternatives(t *testing.T) {
	p := MustParse("(motor | engine) oils?")
	req := p.RequiredAlternatives()
	if len(req) != 2 {
		t.Fatalf("want 2 witness sets, got %v", req)
	}
	if !reflect.DeepEqual(req[0], []string{"motor", "engine"}) {
		t.Fatalf("bad first witness set: %v", req[0])
	}
	if !reflect.DeepEqual(req[1], []string{"oil", "oils"}) {
		t.Fatalf("bad second witness set: %v", req[1])
	}
}

func TestRequiredAlternativesSkipsOptionalAndWildcard(t *testing.T) {
	p := MustParse(`(\w+) (band | ring)? sets?`)
	req := p.RequiredAlternatives()
	if len(req) != 1 {
		t.Fatalf("only the mandatory literal should contribute: %v", req)
	}
	if !reflect.DeepEqual(req[0], []string{"set", "sets"}) {
		t.Fatalf("bad witness: %v", req[0])
	}
}

func TestRequiredAlternativesMultiTokenUsesFirstToken(t *testing.T) {
	p := MustParse("(trio set | ring)")
	req := p.RequiredAlternatives()
	if !reflect.DeepEqual(req[0], []string{"trio", "ring"}) {
		t.Fatalf("multi-token alt should contribute its first token: %v", req)
	}
}

func TestIndexKeysPicksMostSelective(t *testing.T) {
	p := MustParse("(motor | engine | car | truck) oils?")
	keys := p.IndexKeys()
	if !reflect.DeepEqual(keys, []string{"oil", "oils"}) {
		t.Fatalf("IndexKeys should pick the smaller witness set, got %v", keys)
	}
}

func TestIndexKeysNilForPureWildcard(t *testing.T) {
	p := MustParse(`(\w+) (\w+)`)
	if keys := p.IndexKeys(); keys != nil {
		t.Fatalf("pure wildcard pattern must have nil keys, got %v", keys)
	}
}

func TestIndexKeysSoundnessProperty(t *testing.T) {
	// Any title matched by the pattern must contain at least one index key.
	pats := []*Pattern{
		MustParse("rings?"),
		MustParse("(motor | engine) oils?"),
		MustParse("diamond.*trio sets?"),
		MustParse("(abrasive|sand(er|ing))[ -](wheels?|discs?)"),
		MustParse("wedding (band | ring)? set"),
	}
	vocab := []string{"alpha", "beta", "gamma", "delta", "motor", "oil", "ring"}
	r := randx.New(99)
	for _, p := range pats {
		keys := p.IndexKeys()
		if keys == nil {
			t.Fatalf("pattern %q should have keys", p.Raw())
		}
		keySet := map[string]bool{}
		for _, k := range keys {
			keySet[k] = true
		}
		for i := 0; i < 200; i++ {
			title := p.GenerateMatch(r, vocab)
			if !p.Match(title) {
				t.Fatalf("GenerateMatch produced a non-match for %q: %v", p.Raw(), title)
			}
			found := false
			for _, tok := range title {
				if keySet[tok] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("match %v of %q contains no index key %v", title, p.Raw(), keys)
			}
		}
	}
}

func TestSubsumesPaperExamples(t *testing.T) {
	// §4: "denim.*jeans? → Jeans" is subsumed by "jeans? → Jeans".
	general := MustParse("jeans?")
	specific := MustParse("denim.*jeans?")
	if !Subsumes(general, specific) {
		t.Error("jeans? should subsume denim.*jeans?")
	}
	if Subsumes(specific, general) {
		t.Error("denim.*jeans? must not subsume jeans?")
	}
}

func TestSubsumesIdentity(t *testing.T) {
	p := MustParse("(motor | engine) oils?")
	q := MustParse("(motor | engine) oils?")
	if !Subsumes(p, q) || !Subsumes(q, p) {
		t.Error("identical patterns should subsume each other")
	}
}

func TestSubsumesAlternativeSubset(t *testing.T) {
	general := MustParse("(motor | engine | car) oils?")
	specific := MustParse("(motor | engine) oils?")
	if !Subsumes(general, specific) {
		t.Error("superset alternatives should subsume subset alternatives")
	}
	if Subsumes(specific, general) {
		t.Error("subset alternatives must not subsume superset")
	}
}

func TestSubsumesAdjacencyVsGap(t *testing.T) {
	adjacent := MustParse("trio set")
	gapped := MustParse("trio.*set")
	if !Subsumes(gapped, adjacent) {
		t.Error("gap version should subsume adjacent version")
	}
	if Subsumes(adjacent, gapped) {
		t.Error("adjacent version must not subsume gap version")
	}
}

func TestSubsumesWildcardGeneral(t *testing.T) {
	general := MustParse(`(\w+) oils?`)
	specific := MustParse("motor oils?")
	if !Subsumes(general, specific) {
		t.Error("\\w+ oils? should subsume motor oils?")
	}
	if Subsumes(specific, general) {
		t.Error("motor oils? must not subsume \\w+ oils?")
	}
}

func TestSubsumesRejectsSynPatterns(t *testing.T) {
	a := MustParse(`(motor | \syn) oils?`)
	b := MustParse("motor oils?")
	if Subsumes(a, b) || Subsumes(b, a) {
		t.Error("syn patterns must never be reported as subsuming (sound bail-out)")
	}
}

func TestSubsumesOptionalOnSpecificSide(t *testing.T) {
	general := MustParse("wedding set")
	specific := MustParse("wedding (deluxe)? set")
	// specific's variants are {wedding set, wedding deluxe set}; the variant
	// with "deluxe" breaks g's adjacency, so no subsumption.
	if Subsumes(general, specific) {
		t.Error("adjacency must not subsume the optional-token variant")
	}
	gapGeneral := MustParse("wedding.*set")
	if !Subsumes(gapGeneral, specific) {
		t.Error("gap version should subsume both optional variants")
	}
}

func TestSubsumesSoundnessProperty(t *testing.T) {
	// Whenever Subsumes(general, specific) is true, every generated match of
	// specific must be matched by general.
	pairs := []struct{ g, s string }{
		{"jeans?", "denim.*jeans?"},
		{"(motor | engine | car) oils?", "(motor | engine) oils?"},
		{"trio.*set", "trio set"},
		{`(\w+) oils?`, "motor oils?"},
		{"wedding.*set", "wedding (deluxe)? set"},
		{"abrasive.*(wheels?|discs?)", "(abrasive)[ -](wheels?|discs?)"},
	}
	vocab := []string{"x", "y", "z", "denim", "jean", "motor", "oil", "set"}
	r := randx.New(7)
	for _, pr := range pairs {
		g, s := MustParse(pr.g), MustParse(pr.s)
		if !Subsumes(g, s) {
			t.Errorf("expected %q to subsume %q", pr.g, pr.s)
			continue
		}
		for i := 0; i < 300; i++ {
			title := s.GenerateMatch(r, vocab)
			if !g.Match(title) {
				t.Fatalf("soundness violated: %v matches %q but not %q", title, pr.s, pr.g)
			}
		}
	}
}

func TestGenerateMatchAlwaysMatchesProperty(t *testing.T) {
	srcs := []string{
		"rings?",
		"diamond.*trio sets?",
		"(motor | engine) oils?",
		"(abrasive|sand(er|ing))[ -](wheels?|discs?)",
		"wedding (band | ring)? set",
		`(\w+) oils?`,
		`(motor | \syn) oils?`,
	}
	vocab := []string{"a", "b", "c", "d", "e"}
	f := func(seed uint64) bool {
		r := randx.New(seed)
		for _, src := range srcs {
			p := MustParse(src)
			if !p.Match(p.GenerateMatch(r, vocab)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapEstimate(t *testing.T) {
	r := randx.New(3)
	vocab := []string{"x", "y", "z", "denim", "blue"}
	general := MustParse("jeans?")
	specific := MustParse("denim.*jeans?")
	bGivenA, aGivenB := OverlapEstimate(r, general, specific, vocab, 300)
	if aGivenB != 1 {
		t.Fatalf("every denim-jeans match is a jeans match; got %v", aGivenB)
	}
	if bGivenA > 0.9 {
		t.Fatalf("most plain jeans matches lack denim; got %v", bGivenA)
	}
}

func TestOverlapEstimateSignificantOverlap(t *testing.T) {
	// The paper's overlapping pair: (abrasive|sand(er|ing))[ -](wheels?|discs?)
	// vs abrasive.*(wheels?|discs?).
	r := randx.New(4)
	vocab := []string{"kit", "pack", "grit", "inch"}
	a := MustParse("(abrasive|sand(er|ing))[ -](wheels?|discs?)")
	b := MustParse("abrasive.*(wheels?|discs?)")
	bGivenA, aGivenB := OverlapEstimate(r, a, b, vocab, 400)
	// a picks "abrasive" for ~1/3 of its matches (vs sander/sanding), and b's
	// gap accepts the adjacency, so P(b|a) ≈ 1/3; b inserts 0 gap tokens ~1/3
	// of the time, so P(a|b) ≈ 1/3. Both overlaps are partial but
	// significant — exactly the §4 "significantly overlapping rules" case.
	if bGivenA < 0.1 || bGivenA > 0.7 {
		t.Fatalf("partial overlap expected a→b, got %v", bGivenA)
	}
	if aGivenB < 0.1 || aGivenB > 0.7 {
		t.Fatalf("partial overlap expected b→a, got %v", aGivenB)
	}
}

func TestMatchDoesNotPanicOnArbitraryTokens(t *testing.T) {
	p := MustParse("(motor | engine) oils?")
	f := func(tokens []string) bool {
		_ = p.Match(tokens)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenizerPatternAgreement(t *testing.T) {
	// Patterns are matched against tokenize.Tokenize output; parsing a title
	// through the tokenizer and matching must agree with intuition on mixed
	// punctuation.
	p := MustParse("pick[ -]?up trucks?")
	for _, title := range []string{"Pick-Up Truck toy", "pickup truck red", "pick up trucks"} {
		if !p.Match(tokenize.Tokenize(title)) {
			t.Errorf("should match %q", title)
		}
	}
}
