package pattern

import (
	"strings"

	"repro/internal/randx"
)

// ---------------------------------------------------------------------------
// Required-token analysis (rule indexing, §5.3)
// ---------------------------------------------------------------------------

// RequiredAlternatives returns, for each mandatory literal element, a witness
// set of tokens such that every title the pattern matches must contain at
// least one token from each set. (For a multi-token alternative the witness
// is its first token.) Optional elements, gaps, wildcards and \syn slots
// contribute no witnesses. The result may be empty — e.g. for (\w+) oils?
// the "oils?" element still yields {oil, oils}, but a pure-wildcard pattern
// yields nothing and must be scanned unconditionally.
func (p *Pattern) RequiredAlternatives() [][]string {
	var out [][]string
	for _, e := range p.elems {
		if e.Kind != KindLit || e.Optional {
			continue
		}
		set := make(map[string]bool, len(e.Alts))
		var ws []string
		for _, alt := range e.Alts {
			if !set[alt[0]] {
				set[alt[0]] = true
				ws = append(ws, alt[0])
			}
		}
		out = append(out, ws)
	}
	return out
}

// IndexKeys returns the most selective witness set — the smallest
// RequiredAlternatives entry — for use as posting keys in a rule index:
// a title can only match the pattern if it contains one of these tokens.
// It returns nil when the pattern has no mandatory literal element, in which
// case the rule must live on the index's unconditional scan list.
func (p *Pattern) IndexKeys() []string {
	var best []string
	for _, ws := range p.RequiredAlternatives() {
		if best == nil || len(ws) < len(best) {
			best = ws
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Subsumption (§4 rule maintenance: "denim.*jeans? is subsumed by jeans?")
// ---------------------------------------------------------------------------

// Subsumes reports whether every title matched by specific is necessarily
// matched by general — i.e. the specific rule is redundant given the general
// one. The check is sound but not complete: it returns true only when
// subsumption provably holds; pathological patterns (wildcards on the
// general side aligned against multi-token alternatives, \syn slots) may be
// reported as false even if subsumption holds semantically.
func Subsumes(general, specific *Pattern) bool {
	gvs, ok := general.simpleVariants()
	if !ok {
		return false
	}
	svs, ok := specific.simpleVariants()
	if !ok {
		return false
	}
	// Every variant of the specific pattern must be covered by some variant
	// of the general pattern.
	for _, sv := range svs {
		covered := false
		for _, gv := range gvs {
			if embeds(gv, sv) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// variant is a pattern with optionals expanded away: a sequence of items,
// each preceded by a separator (gap or adjacency) relative to the previous
// item.
type varItem struct {
	afterGap bool // true: any tokens may precede this item (.*); false: adjacent
	any      bool // wildcard item (\w+): matches exactly one arbitrary token
	alts     map[string]bool
	multi    bool // some alternative spans multiple tokens
}

const maxVariants = 16

// simpleVariants expands optional elements into plain variants. It fails
// (ok=false) for \syn patterns or when expansion exceeds maxVariants.
func (p *Pattern) simpleVariants() ([][]varItem, bool) {
	variants := [][]varItem{{}}
	pendingGap := make([]bool, 1) // per-variant: was the last separator a gap?
	setGap := func(vi int) { pendingGap[vi] = true }
	for _, e := range p.elems {
		switch e.Kind {
		case KindSyn:
			return nil, false
		case KindGap:
			for vi := range variants {
				setGap(vi)
			}
		case KindAny, KindLit:
			item := varItem{any: e.Kind == KindAny}
			if e.Kind == KindLit {
				item.alts = make(map[string]bool, len(e.Alts))
				for _, a := range e.Alts {
					item.alts[strings.Join(a, " ")] = true
					if len(a) > 1 {
						item.multi = true
					}
				}
			}
			var nextVars [][]varItem
			var nextGaps []bool
			for vi, v := range variants {
				if e.Optional {
					// Variant without the element: an optional element
					// "dissolves" adjacency on both sides into whatever the
					// stronger neighbouring separator is; to stay sound we
					// widen it to a gap only if a gap was already pending —
					// otherwise skipping keeps plain adjacency between the
					// neighbours, which is exactly what the matcher does.
					nextVars = append(nextVars, cloneItems(v))
					nextGaps = append(nextGaps, pendingGap[vi])
				}
				withItem := cloneItems(v)
				it := item
				it.afterGap = pendingGap[vi]
				withItem = append(withItem, it)
				nextVars = append(nextVars, withItem)
				nextGaps = append(nextGaps, false)
			}
			if len(nextVars) > maxVariants {
				return nil, false
			}
			variants = nextVars
			pendingGap = nextGaps
		}
	}
	return variants, true
}

func cloneItems(v []varItem) []varItem {
	out := make([]varItem, len(v))
	copy(out, v)
	return out
}

// embeds reports whether the general variant g embeds into the specific
// variant s: an order-preserving injective mapping of g's items onto s's
// items such that each mapped g item accepts everything the s item can
// produce, and g's adjacency constraints are honoured. Unmapped s items are
// extra constraints and only make s more specific.
func embeds(g, s []varItem) bool {
	// memoized recursion over (gi, si, adjacentRequired)
	type key struct {
		gi, si int
		adj    bool
	}
	memo := map[key]bool{}
	var rec func(gi, si int, adj bool) bool
	rec = func(gi, si int, adj bool) bool {
		if gi == len(g) {
			return true
		}
		k := key{gi, si, adj}
		if v, ok := memo[k]; ok {
			return v
		}
		res := false
		ge := g[gi]
		for j := si; j < len(s); j++ {
			if adj && j > si {
				break // adjacency demanded: must map to the immediate next item
			}
			if adj && s[j].afterGap {
				break // s allows intervening tokens where g demands adjacency
			}
			if !itemAccepts(ge, s[j]) {
				if adj {
					break
				}
				continue
			}
			nextAdj := gi+1 < len(g) && !g[gi+1].afterGap
			if rec(gi+1, j+1, nextAdj) {
				res = true
				break
			}
			if adj {
				break
			}
		}
		memo[k] = res
		return res
	}
	// g's first item: its afterGap is irrelevant (unanchored start).
	return rec(0, 0, false)
}

// itemAccepts reports whether general item ge matches every token sequence
// that specific item se can produce.
func itemAccepts(ge, se varItem) bool {
	if ge.any {
		// \w+ accepts any single token: safe only if se never produces
		// multi-token output.
		return se.any || !se.multi
	}
	if se.any {
		return false // specific wildcard can produce tokens ge rejects
	}
	for alt := range se.alts {
		if !ge.alts[alt] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Match generation (property tests, overlap estimation)
// ---------------------------------------------------------------------------

// GenerateMatch produces a random tokenized title guaranteed to match the
// pattern, padding with draws from vocab. It is used by property tests and
// by sampling-based overlap estimation. vocab must be non-empty.
func (p *Pattern) GenerateMatch(r *randx.Rand, vocab []string) []string {
	var out []string
	pad := func(max int) {
		n := r.Intn(max + 1)
		for i := 0; i < n; i++ {
			out = append(out, r.PickString(vocab))
		}
	}
	pad(2)
	for _, e := range p.elems {
		switch e.Kind {
		case KindGap:
			pad(2)
		case KindAny:
			out = append(out, r.PickString(vocab))
		case KindLit, KindSyn:
			if e.Optional && r.Bool(0.5) {
				continue
			}
			if len(e.Alts) == 0 { // bare \syn slot: any single token matches
				out = append(out, r.PickString(vocab))
				continue
			}
			alt := e.Alts[r.Intn(len(e.Alts))]
			out = append(out, alt...)
		}
	}
	pad(2)
	return out
}

// OverlapEstimate estimates, by sampling, the probability that a title
// matching a also matches b and vice versa. It returns the two conditional
// estimates (P(b|a), P(a|b)). n samples are drawn per direction. It is the
// dynamic complement to Subsumes for the §4 overlap-maintenance challenge.
func OverlapEstimate(r *randx.Rand, a, b *Pattern, vocab []string, n int) (bGivenA, aGivenB float64) {
	if n <= 0 {
		n = 200
	}
	countBA := 0
	for i := 0; i < n; i++ {
		if b.Match(a.GenerateMatch(r, vocab)) {
			countBA++
		}
	}
	countAB := 0
	for i := 0; i < n; i++ {
		if a.Match(b.GenerateMatch(r, vocab)) {
			countAB++
		}
	}
	return float64(countBA) / float64(n), float64(countAB) / float64(n)
}
