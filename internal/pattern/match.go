package pattern

import "strings"

// Match reports whether the pattern matches anywhere in the tokenized title.
// A \syn slot, if present, matches its golden alternatives (so a rule under
// expansion still behaves like the analyst's original rule).
func (p *Pattern) Match(tokens []string) bool {
	for start := 0; start <= len(tokens); start++ {
		if p.matchFrom(tokens, 0, start) {
			return true
		}
		// Without a first anchor token there is no point sliding further:
		// matchFrom from position 0 already explored gaps.
		if len(p.elems) > 0 && p.elems[0].Kind == KindGap {
			break
		}
	}
	return false
}

// matchFrom attempts to match elems[i:] beginning exactly at tokens[pos:].
// Trailing unmatched title tokens are always allowed (unanchored semantics).
func (p *Pattern) matchFrom(tokens []string, i, pos int) bool {
	if i == len(p.elems) {
		return true
	}
	e := p.elems[i]
	switch e.Kind {
	case KindGap:
		for skip := 0; pos+skip <= len(tokens); skip++ {
			if p.matchFrom(tokens, i+1, pos+skip) {
				return true
			}
		}
		return false
	case KindAny:
		return pos < len(tokens) && p.matchFrom(tokens, i+1, pos+1)
	case KindLit, KindSyn:
		if e.Optional && p.matchFrom(tokens, i+1, pos) {
			return true
		}
		if e.Kind == KindSyn && len(e.Alts) == 0 {
			// A bare \syn with no golden alternatives behaves like \w+ for
			// plain matching purposes.
			return pos < len(tokens) && p.matchFrom(tokens, i+1, pos+1)
		}
		for _, alt := range e.Alts {
			if matchAlt(tokens, pos, alt) && p.matchFrom(tokens, i+1, pos+len(alt)) {
				return true
			}
		}
		return false
	}
	return false
}

func matchAlt(tokens []string, pos int, alt []string) bool {
	if pos+len(alt) > len(tokens) {
		return false
	}
	for k, t := range alt {
		if tokens[pos+k] != t {
			return false
		}
	}
	return true
}

// SynMatch is one occurrence of a candidate phrase filling the \syn slot,
// together with the context window the §5.1 tool ranks by: up to ContextWidth
// tokens immediately before and after the candidate.
type SynMatch struct {
	// Candidate is the token sequence that filled the slot.
	Candidate []string
	// Prefix is the context before the candidate (closest token last).
	Prefix []string
	// Suffix is the context after the candidate (closest token first).
	Suffix []string
}

// Key returns the canonical single-string form of the candidate.
func (m SynMatch) Key() string { return strings.Join(m.Candidate, " ") }

// SynOptions configures FindSyn. Defaults follow the paper: candidate
// synonyms of up to 3 tokens, context windows of 5 tokens.
type SynOptions struct {
	MaxSynLen    int // maximum candidate length in tokens (paper: 3)
	ContextWidth int // prefix/suffix window in tokens (paper: 5)
}

// DefaultSynOptions are the §5.1 production settings.
var DefaultSynOptions = SynOptions{MaxSynLen: 3, ContextWidth: 5}

func (o SynOptions) withDefaults() SynOptions {
	if o.MaxSynLen <= 0 {
		o.MaxSynLen = DefaultSynOptions.MaxSynLen
	}
	if o.ContextWidth <= 0 {
		o.ContextWidth = DefaultSynOptions.ContextWidth
	}
	return o
}

// FindSyn enumerates every way the pattern matches the title with the \syn
// slot filled by 1..MaxSynLen arbitrary tokens, mirroring the generalized
// regexes of §5.1 ((\w+) oils?, (\w+\s+\w+) oils?, …). Matches are
// deduplicated by slot span. Golden alternatives also fill the slot — the
// caller separates golden from candidate matches, since golden contexts seed
// the ranking. Patterns without a \syn slot yield nil.
func (p *Pattern) FindSyn(tokens []string, opts SynOptions) []SynMatch {
	if !p.HasSyn() {
		return nil
	}
	opts = opts.withDefaults()
	type span struct{ start, end int }
	seen := map[span]bool{}
	var out []SynMatch

	var rec func(i, pos int, slot *span)
	record := func(s span) {
		if seen[s] {
			return
		}
		seen[s] = true
		m := SynMatch{Candidate: tokens[s.start:s.end]}
		pStart := s.start - opts.ContextWidth
		if pStart < 0 {
			pStart = 0
		}
		m.Prefix = tokens[pStart:s.start]
		sEnd := s.end + opts.ContextWidth
		if sEnd > len(tokens) {
			sEnd = len(tokens)
		}
		m.Suffix = tokens[s.end:sEnd]
		out = append(out, m)
	}
	rec = func(i, pos int, slot *span) {
		if i == len(p.elems) {
			if slot != nil {
				record(*slot)
			}
			return
		}
		e := p.elems[i]
		switch e.Kind {
		case KindGap:
			for skip := 0; pos+skip <= len(tokens); skip++ {
				rec(i+1, pos+skip, slot)
			}
		case KindAny:
			if pos < len(tokens) {
				rec(i+1, pos+1, slot)
			}
		case KindSyn:
			for l := 1; l <= opts.MaxSynLen && pos+l <= len(tokens); l++ {
				s := span{pos, pos + l}
				rec(i+1, pos+l, &s)
			}
		case KindLit:
			if e.Optional {
				rec(i+1, pos, slot)
			}
			for _, alt := range e.Alts {
				if matchAlt(tokens, pos, alt) {
					rec(i+1, pos+len(alt), slot)
				}
			}
		}
	}
	for start := 0; start <= len(tokens); start++ {
		rec(0, start, nil)
	}
	return out
}
