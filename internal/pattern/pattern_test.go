package pattern

import (
	"strings"
	"testing"

	"repro/internal/tokenize"
)

func match(t *testing.T, pat, title string) bool {
	t.Helper()
	p, err := Parse(pat)
	if err != nil {
		t.Fatalf("Parse(%q): %v", pat, err)
	}
	return p.Match(tokenize.Tokenize(title))
}

func TestPaperExampleRings(t *testing.T) {
	for _, title := range []string{
		"Always & Forever Platinaire Diamond Accent Ring",
		"1/4 Carat T.W. Diamond Semi-Eternity Ring in 10kt White Gold",
		"Sterling Silver RINGS set of 3",
	} {
		if !match(t, "rings?", title) {
			t.Errorf("rings? should match %q", title)
		}
	}
	if match(t, "rings?", "Onyx Teething Necklace") {
		t.Error("rings? must not match a necklace")
	}
	// Token-level semantics: "earring" is a different token, unlike a raw
	// character regex where /rings?/ would match inside "earrings".
	if match(t, "rings?", "Gold Hoop Earrings") {
		t.Error("rings? must not match inside the token 'earrings'")
	}
}

func TestPaperExampleTrioSets(t *testing.T) {
	if !match(t, "diamond.*trio sets?", "10kt Diamond Wedding Trio Set in White Gold") {
		t.Error("gap pattern should match")
	}
	if match(t, "diamond.*trio sets?", "Diamond Solitaire Pendant Set") {
		t.Error("missing 'trio' should not match")
	}
	if match(t, "diamond.*trio sets?", "Trio Set with Diamond accents") {
		t.Error("order matters: diamond must precede trio set")
	}
}

func TestPaperExampleMotorOil(t *testing.T) {
	pat := "(motor | engine) oils?"
	if !match(t, pat, "Castrol GTX Motor Oil 5 qt") {
		t.Error("motor oil should match")
	}
	if !match(t, pat, "Premium synthetic engine oils for trucks") {
		t.Error("engine oils should match")
	}
	if match(t, pat, "Olive oil extra virgin") {
		t.Error("olive oil should not match")
	}
	if match(t, pat, "motor vehicle oil filter") {
		t.Error("adjacency: 'motor … oil' with interleaved token must not match")
	}
}

func TestPaperExampleFullMotorOil(t *testing.T) {
	pat := "(motor | engine | auto(motive)? | car | truck | suv | van | vehicle | motorcycle | pick[ -]?up | scooter | atv | boat) (oil | lubricant)s?"
	for _, title := range []string{
		"Mobil 1 Motor Oil",
		"automotive oil 10w-30",
		"auto oils value pack",
		"pickup lubricant premium",
		"pick-up oil for winter",
		"boat lubricants marine grade",
	} {
		if !match(t, pat, title) {
			t.Errorf("full motor-oil pattern should match %q", title)
		}
	}
	if match(t, pat, "cooking oil canola") {
		t.Error("cooking oil should not match")
	}
}

func TestPaperExampleAbrasiveWheels(t *testing.T) {
	pat := "(abrasive|sand(er|ing))[ -](wheels?|discs?)"
	for _, title := range []string{
		"4 inch abrasive wheels pack of 10",
		"sander disc 120 grit",
		"sanding discs assorted",
		"abrasive-wheel kit",
	} {
		if !match(t, pat, title) {
			t.Errorf("abrasive pattern should match %q", title)
		}
	}
	if match(t, pat, "sand castle bucket wheels") {
		t.Error("'sand' alone should not satisfy sand(er|ing)")
	}
}

func TestWildcardPattern(t *testing.T) {
	pat := `(\w+) oils?`
	if !match(t, pat, "truck oil") {
		t.Error("\\w+ should match one token")
	}
	if match(t, pat, "oil") {
		t.Error("\\w+ requires a token before oil")
	}
	pat2 := `(\w+\s+\w+) oils?`
	if !match(t, pat2, "heavy duty truck oil") {
		t.Error("two-wildcard pattern should match")
	}
	if match(t, pat2, "truck oil") {
		t.Error("two-wildcard pattern needs two tokens before oil")
	}
}

func TestMinedSubsequenceStylePattern(t *testing.T) {
	// §5.2 rules have the form a1.*a2.*…*an.
	pat := "denim.*jeans?"
	if !match(t, pat, "dickies indigo blue relaxed fit denim carpenter jeans") {
		t.Error("denim.*jeans should match")
	}
	if match(t, pat, "jeans made of denim") {
		t.Error("order matters in mined rules")
	}
}

func TestOptionalGroup(t *testing.T) {
	pat := "wedding (band | ring)? set"
	if !match(t, pat, "wedding set deluxe") {
		t.Error("optional group should be skippable")
	}
	if !match(t, pat, "wedding band set") {
		t.Error("optional group should match when present")
	}
	if match(t, pat, "wedding candle set") {
		t.Error("non-alternative token must not satisfy the optional group position")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"(a | b",
		"a)b",
		"()",
		"a | b", // top-level alternation is not in the dialect
		`(\syn | \syn2x)`,
		`(a.*b | c)`,    // gap inside a group alternative
		`(\syn) (\syn)`, // two slots
		`(\syn)?`,       // optional slot
		"[abc]",         // non-separator class
		"(x)?",          // matches everything
		".*",            // matches everything
		`\q+`,           // unsupported escape
		"a[",            // unterminated class
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseSynGolden(t *testing.T) {
	p := MustParse(`(motor | engine | \syn) oils?`)
	if !p.HasSyn() {
		t.Fatal("pattern should have a syn slot")
	}
	g := p.SynGolden()
	if len(g) != 2 {
		t.Fatalf("want 2 goldens, got %v", g)
	}
	if g[0][0] != "motor" || g[1][0] != "engine" {
		t.Fatalf("bad goldens: %v", g)
	}
}

func TestSynSlotMatchesGoldensOnly(t *testing.T) {
	p := MustParse(`(motor | engine | \syn) oils?`)
	if !p.Match(tokenize.Tokenize("motor oil")) {
		t.Error("syn pattern should still match goldens")
	}
	if p.Match(tokenize.Tokenize("truck oil")) {
		t.Error("plain Match must not treat the slot as a wildcard when goldens exist")
	}
}

func TestFindSyn(t *testing.T) {
	p := MustParse(`(motor | engine | \syn) oils?`)
	tokens := tokenize.Tokenize("Valvoline premium truck oil 5 qt bottle")
	ms := p.FindSyn(tokens, DefaultSynOptions)
	keys := map[string]bool{}
	for _, m := range ms {
		keys[m.Key()] = true
	}
	if !keys["truck"] {
		t.Fatalf("expected candidate 'truck', got %v", keys)
	}
	if !keys["premium truck"] {
		t.Fatalf("expected 2-token candidate 'premium truck', got %v", keys)
	}
	if keys["oil"] || keys["qt"] {
		t.Fatalf("candidates must precede 'oil': %v", keys)
	}
}

func TestFindSynContextWindows(t *testing.T) {
	p := MustParse(`(area | \syn) rugs?`)
	tokens := tokenize.Tokenize("royal collection hand tufted oriental rug 5x8 blue wool soft pile")
	ms := p.FindSyn(tokens, SynOptions{MaxSynLen: 1, ContextWidth: 3})
	var got *SynMatch
	for i := range ms {
		if ms[i].Key() == "oriental" {
			got = &ms[i]
		}
	}
	if got == nil {
		t.Fatalf("no 'oriental' candidate in %v", ms)
	}
	if strings.Join(got.Prefix, " ") != "collection hand tufted" {
		t.Errorf("prefix = %v", got.Prefix)
	}
	if strings.Join(got.Suffix, " ") != "rug 5x8 blue" {
		t.Errorf("suffix = %v", got.Suffix)
	}
}

func TestFindSynNoSlot(t *testing.T) {
	p := MustParse("rings?")
	if ms := p.FindSyn([]string{"ring"}, DefaultSynOptions); ms != nil {
		t.Fatalf("patterns without a slot should yield nil, got %v", ms)
	}
}

func TestFindSynMaxLen(t *testing.T) {
	p := MustParse(`(\syn) gloves?`)
	tokens := []string{"a", "b", "c", "d", "gloves"}
	ms := p.FindSyn(tokens, SynOptions{MaxSynLen: 3, ContextWidth: 5})
	longest := 0
	for _, m := range ms {
		if len(m.Candidate) > longest {
			longest = len(m.Candidate)
		}
		if m.Candidate[len(m.Candidate)-1] != "d" {
			t.Errorf("candidate %v must end just before 'gloves'", m.Candidate)
		}
	}
	if longest != 3 {
		t.Fatalf("longest candidate %d, want 3", longest)
	}
	if len(ms) != 3 {
		t.Fatalf("want candidates b|c|d, c|d, d → 3, got %d: %v", len(ms), ms)
	}
}

func TestWithSynExpanded(t *testing.T) {
	p := MustParse(`(motor | engine | \syn) oils?`)
	exp := p.WithSynExpanded([][]string{{"truck"}, {"heavy", "duty"}, {"motor"}})
	if exp.HasSyn() {
		t.Fatal("expanded pattern should have no slot left")
	}
	for _, title := range []string{"truck oil", "heavy duty oil", "motor oil", "engine oils"} {
		if !exp.Match(tokenize.Tokenize(title)) {
			t.Errorf("expanded pattern should match %q", title)
		}
	}
	if exp.Match(tokenize.Tokenize("olive oil")) {
		t.Error("expanded pattern should not match unrelated synonyms")
	}
	// Duplicate golden "motor" must not be doubled.
	var lit *Elem
	for i := range exp.elems {
		if exp.elems[i].Kind == KindLit && len(exp.elems[i].Alts) > 1 {
			lit = &exp.elems[i]
			break
		}
	}
	if lit == nil || len(lit.Alts) != 4 {
		t.Fatalf("expanded alts should be motor,engine,truck,heavy duty: %+v", exp.elems)
	}
}

func TestWithSynExpandedNoSlotIsNoop(t *testing.T) {
	p := MustParse("rings?")
	exp := p.WithSynExpanded([][]string{{"band"}})
	if exp.Match(tokenize.Tokenize("wedding band")) {
		t.Fatal("no-slot expansion must not change semantics")
	}
	if !exp.Match(tokenize.Tokenize("wedding ring")) {
		t.Fatal("no-slot expansion lost original semantics")
	}
}

func TestCaseInsensitivePatternSource(t *testing.T) {
	if !match(t, "Rings?", "diamond ring") {
		t.Error("pattern source should be lower-cased at parse time")
	}
}

func TestRawAndElems(t *testing.T) {
	p := MustParse("(motor | engine) oils?")
	if p.Raw() != "(motor | engine) oils?" {
		t.Fatalf("Raw() = %q", p.Raw())
	}
	elems := p.Elems()
	if len(elems) != 2 || elems[0].Kind != KindLit || len(elems[0].Alts) != 2 {
		t.Fatalf("Elems() = %+v", elems)
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"rings?",
		"diamond.*trio sets?",
		"(motor | engine) oils?",
		"(abrasive|sand(er|ing))[ -](wheels?|discs?)",
		`(\w+) oils?`,
		"wedding (band | ring)? set",
	}
	titles := []string{
		"diamond ring", "diamond wedding trio set", "motor oil",
		"sanding discs", "truck oil", "wedding set", "random junk title",
		"engine oils", "abrasive wheel", "wedding band set",
	}
	for _, src := range srcs {
		p1 := MustParse(src)
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("re-parse of %q → %q failed: %v", src, p1.String(), err)
		}
		for _, title := range titles {
			tk := tokenize.Tokenize(title)
			if p1.Match(tk) != p2.Match(tk) {
				t.Errorf("round trip of %q changed semantics on %q", src, title)
			}
		}
	}
}
