package ie

import (
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/tokenize"
)

// TokenTagger is the learned IE baseline of §6: an averaged-perceptron
// token classifier (a CRF-lite stand-in) that labels each title token as
// part of the target attribute's value or not. It trains from items whose
// attribute value is visible in the title (distant supervision, the way the
// WalmartLabs team bootstraps from the catalog's structured attributes).
type TokenTagger struct {
	Attr   string
	Epochs int

	weights map[string]float64 // feature → averaged weight (binary: in-value vs out)
}

// NewTokenTagger builds an untrained tagger for attr (e.g. "Brand Name").
func NewTokenTagger(attr string, epochs int) *TokenTagger {
	if epochs <= 0 {
		epochs = 4
	}
	return &TokenTagger{Attr: attr, Epochs: epochs}
}

// tokenFeatures extracts positional and lexical features for token i.
func tokenFeatures(tokens []string, i int) []string {
	f := []string{
		"w=" + tokens[i],
		"pos0=" + boolStr(i == 0),
	}
	if i > 0 {
		f = append(f, "prev="+tokens[i-1])
	} else {
		f = append(f, "prev=<s>")
	}
	if i+1 < len(tokens) {
		f = append(f, "next="+tokens[i+1])
	} else {
		f = append(f, "next=</s>")
	}
	if isNumeric(tokens[i]) {
		f = append(f, "numeric")
	}
	return f
}

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// Train fits the tagger on items whose Attr value occurs in the title.
func (t *TokenTagger) Train(items []*catalog.Item) {
	type example struct {
		feats []string
		label bool
	}
	var examples []example
	for _, it := range items {
		val, ok := it.Attrs[t.Attr]
		if !ok {
			continue
		}
		valTokens := tokenize.Tokenize(val)
		if len(valTokens) == 0 {
			continue
		}
		tokens := it.TitleTokens()
		inVal := markSpan(tokens, valTokens)
		if inVal == nil {
			continue // value not visible in the title
		}
		for i := range tokens {
			examples = append(examples, example{tokenFeatures(tokens, i), inVal[i]})
		}
	}
	w := map[string]float64{}
	acc := map[string]float64{}
	steps := t.Epochs * len(examples)
	step := 0
	for e := 0; e < t.Epochs; e++ {
		for _, ex := range examples {
			step++
			score := 0.0
			for _, f := range ex.feats {
				score += w[f]
			}
			pred := score > 0
			if pred != ex.label {
				delta := 1.0
				if !ex.label {
					delta = -1
				}
				remain := float64(steps - step + 1)
				for _, f := range ex.feats {
					w[f] += delta
					acc[f] += delta * remain
				}
			}
		}
	}
	t.weights = map[string]float64{}
	for f, v := range acc {
		if v != 0 {
			t.weights[f] = v / math.Max(1, float64(steps))
		}
	}
}

// markSpan returns a per-token in-value mask if valTokens occurs
// contiguously in tokens, else nil.
func markSpan(tokens, valTokens []string) []bool {
	for start := 0; start+len(valTokens) <= len(tokens); start++ {
		match := true
		for k, vt := range valTokens {
			if tokens[start+k] != vt {
				match = false
				break
			}
		}
		if match {
			mask := make([]bool, len(tokens))
			for k := range valTokens {
				mask[start+k] = true
			}
			return mask
		}
	}
	return nil
}

// Extract implements the Rule interface: contiguous runs of positive tokens
// become extractions.
func (t *TokenTagger) Extract(tokens []string) []Extraction {
	if t.weights == nil {
		return nil
	}
	var out []Extraction
	i := 0
	for i < len(tokens) {
		score := 0.0
		for _, f := range tokenFeatures(tokens, i) {
			score += t.weights[f]
		}
		if score <= 0 {
			i++
			continue
		}
		j := i + 1
		for j < len(tokens) {
			s := 0.0
			for _, f := range tokenFeatures(tokens, j) {
				s += t.weights[f]
			}
			if s <= 0 {
				break
			}
			j++
		}
		val := tokens[i]
		for k := i + 1; k < j; k++ {
			val += " " + tokens[k]
		}
		out = append(out, Extraction{Attr: t.Attr, Value: val, Start: i, End: j, RuleID: t.ID()})
		i = j
	}
	return out
}

// ID implements Rule.
func (t *TokenTagger) ID() string { return "learned-" + t.Attr }

// EvaluateExtractor measures precision/recall of attribute extraction
// against the catalog's structured attributes (token-level match). Items
// without the attribute carry no verifiable truth, so only items that have
// it count — toward both precision (emissions elsewhere are unverifiable)
// and recall.
func EvaluateExtractor(extract func(*catalog.Item) []Extraction, items []*catalog.Item, attr string) (precision, recall float64) {
	var emitted, correct, withAttr int
	for _, it := range items {
		truth, has := it.Attrs[attr]
		if !has {
			continue
		}
		withAttr++
		for _, e := range extract(it) {
			if e.Attr != attr {
				continue
			}
			emitted++
			if equalsFold(e.Value, truth) {
				correct++
			}
		}
	}
	if emitted > 0 {
		precision = float64(correct) / float64(emitted)
	}
	if withAttr > 0 {
		recall = float64(correct) / float64(withAttr)
	}
	return precision, recall
}

func equalsFold(a, b string) bool {
	ta, tb := tokenize.Tokenize(a), tokenize.Tokenize(b)
	if len(ta) != len(tb) {
		return false
	}
	for i := range ta {
		if ta[i] != tb[i] {
			return false
		}
	}
	return true
}

// TopFeatures exposes the tagger's strongest features for diagnostics.
func (t *TokenTagger) TopFeatures(n int) []string {
	type fw struct {
		f string
		w float64
	}
	var all []fw
	for f, w := range t.weights {
		all = append(all, fw{f, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].f < all[j].f
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].f
	}
	return out
}
