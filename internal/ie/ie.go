// Package ie implements the §6 information-extraction substrate: rule-based
// extraction of attribute-value pairs from product titles and descriptions,
// as built at WalmartLabs. Three rule families from the paper:
//
//   - dictionary rules: a substring is extracted as a brand name if it
//     approximately matches an entry in a brand dictionary AND the
//     surrounding text conforms to a context pattern;
//   - pattern rules: token regexes for weights, sizes and colors ("we found
//     that instead of learning, it was easier to use regular expressions to
//     capture the appearance patterns of such attributes");
//   - normalization rules: "IBM", "IBM Inc.", "the Big Blue" → "IBM
//     Corporation".
//
// A learned baseline (position-aware averaged perceptron token tagger)
// stands in for the paper's CRF/structural-perceptron comparison.
package ie

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/tokenize"
)

// Extraction is one extracted attribute value.
type Extraction struct {
	Attr  string
	Value string
	// Start/End are token offsets in the source title.
	Start, End int
	RuleID     string
}

// Rule is the IE rule contract: rules inspect tokenized titles and emit
// extractions. Implementations are managed through a Ruleset, which gives
// them the enable/disable and provenance hooks the §4 agenda asks for.
type Rule interface {
	ID() string
	Extract(tokens []string) []Extraction
}

// Ruleset is an ordered, switchable collection of IE rules.
type Ruleset struct {
	rules    []Rule
	disabled map[string]bool
}

// NewRuleset wraps rules.
func NewRuleset(rules ...Rule) *Ruleset {
	return &Ruleset{rules: rules, disabled: map[string]bool{}}
}

// Add appends a rule.
func (rs *Ruleset) Add(r Rule) { rs.rules = append(rs.rules, r) }

// Disable turns a rule off by ID; Enable reverts it.
func (rs *Ruleset) Disable(id string) { rs.disabled[id] = true }

// Enable re-activates a rule by ID.
func (rs *Ruleset) Enable(id string) { delete(rs.disabled, id) }

// Extract runs all active rules over a title and resolves overlaps: when
// two extractions of the same attribute overlap, the longer span wins (ties
// to the earlier rule) — the same drop-overlapping-mentions policy the
// entity-tagging pipeline of [3] uses.
func (rs *Ruleset) Extract(title string) []Extraction {
	tokens := tokenize.Tokenize(title)
	var all []Extraction
	for _, r := range rs.rules {
		if rs.disabled[r.ID()] {
			continue
		}
		all = append(all, r.Extract(tokens)...)
	}
	return resolveOverlaps(all)
}

func resolveOverlaps(all []Extraction) []Extraction {
	sort.SliceStable(all, func(i, j int) bool {
		li, lj := all[i].End-all[i].Start, all[j].End-all[j].Start
		if li != lj {
			return li > lj
		}
		return all[i].Start < all[j].Start
	})
	var out []Extraction
	for _, e := range all {
		clash := false
		for _, kept := range out {
			if kept.Attr == e.Attr && e.Start < kept.End && kept.Start < e.End {
				clash = true
				break
			}
		}
		if !clash {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Attr < out[j].Attr
	})
	return out
}

// ---------------------------------------------------------------------------
// Dictionary rules (brand extraction)
// ---------------------------------------------------------------------------

// DictRule extracts dictionary entries appearing in the title. Entries may
// span several tokens. MaxEditDistance>0 allows approximate single-token
// matches ("sander" ≈ "sanders"); context constraints, when set, require a
// neighbouring token condition to hold, mirroring the paper's "the text
// surrounding s conforms to a pre-specified pattern".
type DictRule struct {
	RuleID string
	Attr   string
	// Entries maps canonical dictionary phrases (lower-case, single-space).
	Entries map[string]bool
	// MaxEditDistance for approximate matching of single-token entries.
	MaxEditDistance int
	// RequireContext, when non-nil, must approve (prevToken, nextToken);
	// empty strings mark the title boundary.
	RequireContext func(prev, next string) bool

	maxEntryTokens int
}

// NewDictRule builds a dictionary rule from a list of phrases.
func NewDictRule(id, attr string, phrases []string, maxEdit int) *DictRule {
	d := &DictRule{RuleID: id, Attr: attr, Entries: map[string]bool{}, MaxEditDistance: maxEdit}
	for _, ph := range phrases {
		toks := tokenize.Tokenize(ph)
		if len(toks) == 0 {
			continue
		}
		d.Entries[strings.Join(toks, " ")] = true
		if len(toks) > d.maxEntryTokens {
			d.maxEntryTokens = len(toks)
		}
	}
	return d
}

// ID implements Rule.
func (d *DictRule) ID() string { return d.RuleID }

// Extract implements Rule.
func (d *DictRule) Extract(tokens []string) []Extraction {
	var out []Extraction
	for start := 0; start < len(tokens); start++ {
		for l := d.maxEntryTokens; l >= 1; l-- {
			end := start + l
			if end > len(tokens) {
				continue
			}
			phrase := strings.Join(tokens[start:end], " ")
			matched, canonical := d.lookup(phrase, l)
			if !matched {
				continue
			}
			if d.RequireContext != nil {
				prev, next := "", ""
				if start > 0 {
					prev = tokens[start-1]
				}
				if end < len(tokens) {
					next = tokens[end]
				}
				if !d.RequireContext(prev, next) {
					continue
				}
			}
			out = append(out, Extraction{Attr: d.Attr, Value: canonical, Start: start, End: end, RuleID: d.RuleID})
			break // longest match at this start position wins
		}
	}
	return out
}

func (d *DictRule) lookup(phrase string, nTokens int) (bool, string) {
	if d.Entries[phrase] {
		return true, phrase
	}
	if d.MaxEditDistance > 0 && nTokens == 1 && len(phrase) > 4 {
		for entry := range d.Entries {
			if strings.Contains(entry, " ") {
				continue
			}
			if tokenize.EditDistance(phrase, entry) <= d.MaxEditDistance {
				return true, entry
			}
		}
	}
	return false, ""
}

// ---------------------------------------------------------------------------
// Pattern rules (weights, sizes, colors)
// ---------------------------------------------------------------------------

// UnitRule extracts 〈number unit〉 token pairs (and fused forms like "38in")
// for a unit family, e.g. weights (oz, lb, qt) or sizes (inch, ft, mm).
type UnitRule struct {
	RuleID string
	Attr   string
	// Units maps accepted unit tokens to the canonical unit.
	Units map[string]string
}

// ID implements Rule.
func (u *UnitRule) ID() string { return u.RuleID }

// Extract implements Rule.
func (u *UnitRule) Extract(tokens []string) []Extraction {
	var out []Extraction
	for i, tok := range tokens {
		// Form 1: "5 qt" — numeric token followed by a unit token.
		if isNumeric(tok) && i+1 < len(tokens) {
			if canon, ok := u.Units[tokens[i+1]]; ok {
				out = append(out, Extraction{
					Attr: u.Attr, Value: tok + " " + canon,
					Start: i, End: i + 2, RuleID: u.RuleID,
				})
				continue
			}
		}
		// Form 2: "38in" / "12oz" — fused number+unit.
		if num, unit, ok := splitFused(tok); ok {
			if canon, ok := u.Units[unit]; ok {
				out = append(out, Extraction{
					Attr: u.Attr, Value: num + " " + canon,
					Start: i, End: i + 1, RuleID: u.RuleID,
				})
			}
		}
	}
	return out
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	dot := false
	for _, r := range s {
		if r == '.' {
			if dot {
				return false
			}
			dot = true
			continue
		}
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func splitFused(s string) (num, unit string, ok bool) {
	i := 0
	for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.') {
		i++
	}
	if i == 0 || i == len(s) {
		return "", "", false
	}
	if !isNumeric(s[:i]) {
		return "", "", false
	}
	return s[:i], s[i:], true
}

// ---------------------------------------------------------------------------
// Normalization rules
// ---------------------------------------------------------------------------

// Normalizer maps extracted value variants to canonical forms — the "IBM
// Inc." → "IBM Corporation" rules. Unknown values pass through unchanged.
type Normalizer struct {
	RuleID string
	// Canon maps lower-case variants to the canonical rendering.
	Canon map[string]string
}

// NewNormalizer builds a normalizer from canonical → variants lists.
func NewNormalizer(id string, groups map[string][]string) *Normalizer {
	n := &Normalizer{RuleID: id, Canon: map[string]string{}}
	for canonical, variants := range groups {
		n.Canon[strings.ToLower(canonical)] = canonical
		for _, v := range variants {
			n.Canon[strings.ToLower(v)] = canonical
		}
	}
	return n
}

// Normalize rewrites the extraction values in place and returns the slice.
func (n *Normalizer) Normalize(es []Extraction) []Extraction {
	for i := range es {
		if canon, ok := n.Canon[strings.ToLower(es[i].Value)]; ok {
			es[i].Value = canon
		}
	}
	return es
}

// ---------------------------------------------------------------------------
// Extractor: rules + normalization end to end
// ---------------------------------------------------------------------------

// Extractor bundles a ruleset with per-attribute normalizers.
type Extractor struct {
	Rules       *Ruleset
	Normalizers []*Normalizer
}

// Extract runs rules then normalization on an item's title.
func (x *Extractor) Extract(it *catalog.Item) []Extraction {
	es := x.Rules.Extract(it.Title())
	for _, n := range x.Normalizers {
		es = n.Normalize(es)
	}
	return es
}

// Describe summarizes the extractor for operators.
func (x *Extractor) Describe() string {
	return fmt.Sprintf("ie: %d rules (%d disabled), %d normalizers",
		len(x.Rules.rules), len(x.Rules.disabled), len(x.Normalizers))
}
