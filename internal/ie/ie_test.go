package ie

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/tokenize"
)

func brandDict() *DictRule {
	return NewDictRule("dict-brand", "Brand Name",
		[]string{"apex", "luboil", "dickies", "royal weave", "forever fine"}, 1)
}

func TestDictRuleExactAndMultiToken(t *testing.T) {
	d := brandDict()
	es := d.Extract(tokenize.Tokenize("Royal Weave oriental area rug 5x8"))
	if len(es) != 1 || es[0].Value != "royal weave" || es[0].Start != 0 || es[0].End != 2 {
		t.Fatalf("multi-token dict extraction wrong: %+v", es)
	}
}

func TestDictRuleApproximateMatch(t *testing.T) {
	d := brandDict()
	es := d.Extract(tokenize.Tokenize("dickis relaxed fit jeans")) // typo, distance 1
	if len(es) != 1 || es[0].Value != "dickies" {
		t.Fatalf("approximate match failed: %+v", es)
	}
	// Short tokens must not fuzzy-match (guard length > 4).
	es = d.Extract(tokenize.Tokenize("apx cable"))
	if len(es) != 0 {
		t.Fatalf("short token fuzzy match should be off: %+v", es)
	}
}

func TestDictRuleContextConstraint(t *testing.T) {
	d := brandDict()
	d.RequireContext = func(prev, next string) bool { return prev == "" || prev == "by" }
	es := d.Extract(tokenize.Tokenize("apex quad core laptop"))
	if len(es) != 1 {
		t.Fatalf("title-initial brand should extract: %+v", es)
	}
	es = d.Extract(tokenize.Tokenize("quad core apex laptop"))
	if len(es) != 0 {
		t.Fatalf("mid-title brand without 'by' must not extract: %+v", es)
	}
	es = d.Extract(tokenize.Tokenize("laptop by apex deluxe"))
	if len(es) != 1 {
		t.Fatalf("'by apex' should extract: %+v", es)
	}
}

func weightRule() *UnitRule {
	return &UnitRule{RuleID: "unit-weight", Attr: "Weight", Units: map[string]string{
		"oz": "oz", "lb": "lb", "qt": "qt", "ml": "ml", "gal": "gal",
	}}
}

func sizeRule() *UnitRule {
	return &UnitRule{RuleID: "unit-size", Attr: "Size", Units: map[string]string{
		"in": "inch", "inch": "inch", "ft": "ft", "mm": "mm",
	}}
}

func TestUnitRuleForms(t *testing.T) {
	w := weightRule()
	es := w.Extract(tokenize.Tokenize("castrol motor oil 5 qt jug"))
	if len(es) != 1 || es[0].Value != "5 qt" {
		t.Fatalf("split form failed: %+v", es)
	}
	es = w.Extract(tokenize.Tokenize("roast coffee 12oz bag"))
	if len(es) != 1 || es[0].Value != "12 oz" {
		t.Fatalf("fused form failed: %+v", es)
	}
	es = sizeRule().Extract(tokenize.Tokenize("dickies 38in. x 30in. jeans"))
	if len(es) != 2 || es[0].Value != "38 inch" || es[1].Value != "30 inch" {
		t.Fatalf("fused inches failed: %+v", es)
	}
}

func TestUnitRuleDecimal(t *testing.T) {
	es := sizeRule().Extract(tokenize.Tokenize("laptop 15.6 inch display"))
	if len(es) != 1 || es[0].Value != "15.6 inch" {
		t.Fatalf("decimal failed: %+v", es)
	}
}

func TestUnitRuleNoFalsePositives(t *testing.T) {
	es := weightRule().Extract(tokenize.Tokenize("pack of three quarts"))
	if len(es) != 0 {
		t.Fatalf("no numeric token → no extraction: %+v", es)
	}
}

func TestNormalizer(t *testing.T) {
	n := NewNormalizer("norm-brand", map[string][]string{
		"IBM Corporation": {"ibm", "ibm inc", "the big blue"},
	})
	es := n.Normalize([]Extraction{{Attr: "Brand Name", Value: "ibm inc"}})
	if es[0].Value != "IBM Corporation" {
		t.Fatalf("normalization failed: %+v", es[0])
	}
	es = n.Normalize([]Extraction{{Attr: "Brand Name", Value: "unknown brand"}})
	if es[0].Value != "unknown brand" {
		t.Fatal("unknown values must pass through")
	}
}

func TestRulesetOverlapResolution(t *testing.T) {
	rs := NewRuleset(brandDict())
	// Add a competing single-token dict whose match is inside the longer one.
	rs.Add(NewDictRule("dict-short", "Brand Name", []string{"royal"}, 0))
	es := rs.Extract("Royal Weave oriental rug")
	if len(es) != 1 || es[0].Value != "royal weave" {
		t.Fatalf("longest span should win: %+v", es)
	}
}

func TestRulesetDisableEnable(t *testing.T) {
	rs := NewRuleset(brandDict())
	rs.Disable("dict-brand")
	if es := rs.Extract("apex laptop"); len(es) != 0 {
		t.Fatalf("disabled rule fired: %+v", es)
	}
	rs.Enable("dict-brand")
	if es := rs.Extract("apex laptop"); len(es) != 1 {
		t.Fatal("re-enabled rule silent")
	}
}

func TestExtractorEndToEnd(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 91, NumTypes: 40})
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 3000, Epoch: 0})

	// Build the brand dictionary from the taxonomy (the paper's "large given
	// dictionary of brand names").
	brandSet := map[string]bool{}
	for _, ty := range cat.Types() {
		for _, b := range ty.Brands {
			brandSet[b] = true
		}
	}
	var brands []string
	for b := range brandSet {
		brands = append(brands, b)
	}
	x := &Extractor{Rules: NewRuleset(NewDictRule("dict-brand", "Brand Name", brands, 0))}

	prec, rec := EvaluateExtractor(x.Extract, items, "Brand Name")
	if prec < 0.9 {
		t.Fatalf("dictionary brand extraction precision %.3f < 0.9", prec)
	}
	if rec < 0.4 {
		t.Fatalf("brand recall %.3f too low (brands appear in ~55%% of titles)", rec)
	}
}

func TestLearnedTaggerTrainsAndExtracts(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 92, NumTypes: 40})
	train := cat.GenerateBatch(catalog.BatchSpec{Size: 4000, Epoch: 0})
	test := cat.GenerateBatch(catalog.BatchSpec{Size: 1500, Epoch: 0})

	tagger := NewTokenTagger("Brand Name", 4)
	tagger.Train(train)
	if len(tagger.TopFeatures(5)) == 0 {
		t.Fatal("tagger learned nothing")
	}
	prec, rec := EvaluateExtractor(func(it *catalog.Item) []Extraction {
		return tagger.Extract(it.TitleTokens())
	}, test, "Brand Name")
	if prec < 0.5 || rec < 0.3 {
		t.Fatalf("learned baseline too weak: p=%.3f r=%.3f", prec, rec)
	}
}

func TestRulesBeatLearnedOnPrecision(t *testing.T) {
	// §6 / [8]: rule-based IE dominates industry partly because dictionary
	// rules are precise. Verify the ordering on brand extraction.
	cat := catalog.New(catalog.Config{Seed: 93, NumTypes: 40})
	train := cat.GenerateBatch(catalog.BatchSpec{Size: 4000, Epoch: 0})
	test := cat.GenerateBatch(catalog.BatchSpec{Size: 1500, Epoch: 0})

	brandSet := map[string]bool{}
	for _, ty := range cat.Types() {
		for _, b := range ty.Brands {
			brandSet[b] = true
		}
	}
	var brands []string
	for b := range brandSet {
		brands = append(brands, b)
	}
	dict := &Extractor{Rules: NewRuleset(NewDictRule("dict-brand", "Brand Name", brands, 0))}
	dictPrec, _ := EvaluateExtractor(dict.Extract, test, "Brand Name")

	tagger := NewTokenTagger("Brand Name", 4)
	tagger.Train(train)
	learnedPrec, _ := EvaluateExtractor(func(it *catalog.Item) []Extraction {
		return tagger.Extract(it.TitleTokens())
	}, test, "Brand Name")

	if dictPrec < learnedPrec {
		t.Fatalf("dictionary rules should win on precision: %.3f vs %.3f", dictPrec, learnedPrec)
	}
}

func TestDescribe(t *testing.T) {
	x := &Extractor{Rules: NewRuleset(brandDict()), Normalizers: []*Normalizer{NewNormalizer("n", nil)}}
	if !strings.Contains(x.Describe(), "1 rules") {
		t.Fatalf("describe: %s", x.Describe())
	}
}
