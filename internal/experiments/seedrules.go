package experiments

import (
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
)

// SeedRules builds the "analysts wrote the obvious rules" rulebase for a
// catalog (§3.2 "The Obvious Cases"): whitelist rules from each type's
// epoch-0 head terms and synonyms, gate rules for the trap phrases
// ("wedding band" → rings), attribute-existence rules (isbn → books),
// attribute-value constraints for brands sold by few types ("Apple" →
// {laptop, phone, …}), and a handful of curated blacklists for the known
// cross-type vocabulary collisions in the lexicon — exactly the repairs an
// analyst makes after watching the first misclassifications.
func SeedRules(cat *catalog.Catalog, rb *core.Rulebase, actor string) error {
	// Tokens that appear as (single-token) head terms of more than one type
	// are ambiguous; analysts skip those whitelists.
	headCount := map[string]int{}
	for _, ty := range cat.Types() {
		for _, h := range ty.HeadTerms {
			if !strings.Contains(h.Text, " ") {
				headCount[h.Text]++
			}
		}
	}

	for _, ty := range cat.Types() {
		terms := map[string]bool{}
		for _, h := range ty.HeadTerms {
			if h.EmergeEpoch == 0 {
				terms[h.Text] = true
			}
		}
		for _, s := range ty.Synonyms {
			if s.EmergeEpoch == 0 {
				terms[s.Text] = true
			}
		}
		var sorted []string
		for t := range terms {
			if !strings.Contains(t, " ") && headCount[t] > 1 {
				continue
			}
			sorted = append(sorted, t)
		}
		sort.Strings(sorted)
		for _, term := range sorted {
			r, err := core.NewWhitelist(term, ty.Name)
			if err != nil {
				return err
			}
			r.Provenance = "analyst-seed"
			if _, err := rb.Add(r, actor); err != nil {
				return err
			}
		}
		for _, trap := range ty.Traps {
			g, err := core.NewGate(trap, ty.Name)
			if err != nil {
				return err
			}
			g.Provenance = "analyst-seed"
			if _, err := rb.Add(g, actor); err != nil {
				return err
			}
		}
		for attr := range ty.Attrs {
			if attr != "isbn" {
				continue // only isbn is discriminative enough for existence
			}
			a, err := core.NewAttrExists(attr, ty.Name)
			if err != nil {
				return err
			}
			a.Provenance = "analyst-seed"
			if _, err := rb.Add(a, actor); err != nil {
				return err
			}
		}
	}

	// Brand constraints: brands sold by at most 5 types become AttrValue
	// rules (the "Apple → laptop/phone" knowledge-base reasoning).
	brandTypes := map[string][]string{}
	for _, ty := range cat.Types() {
		for _, b := range ty.Brands {
			brandTypes[b] = append(brandTypes[b], ty.Name)
		}
	}
	var brands []string
	for b, tys := range brandTypes {
		if len(tys) <= 5 {
			brands = append(brands, b)
		}
	}
	sort.Strings(brands)
	for _, b := range brands {
		tys := brandTypes[b]
		sort.Strings(tys)
		r, err := core.NewAttrValue("Brand Name", b, tys)
		if err != nil {
			return err
		}
		r.Provenance = "analyst-seed"
		if _, err := rb.Add(r, actor); err != nil {
			return err
		}
	}

	// Curated blacklists for lexicon collisions analysts discovered.
	blacklists := []struct{ src, target string }{
		{"(computer | laptop | sleeve | ultrabook | chromebook)", "notebooks"},
		{"(olive | coconut | cooking)", "motor oil"},
		{"(laptop | notebook | messenger)", "books"},
		{"toy rings?", "rings"},
	}
	for _, bl := range blacklists {
		if cat.TypeByName(bl.target) == nil {
			continue
		}
		r, err := core.NewBlacklist(bl.src, bl.target)
		if err != nil {
			return err
		}
		r.Provenance = "analyst-seed"
		if _, err := rb.Add(r, actor); err != nil {
			return err
		}
	}
	return nil
}
