package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/mining"
	"repro/internal/randx"
)

// ExecOptions scales E4/E5/E11.
type ExecOptions struct {
	Seed      uint64
	NumTypes  int // default 120
	RuleCount int // target rulebase size, default 20000 (the paper's 20,459)
	ItemCount int // default 2000
	Workers   int // default 8
}

func (o ExecOptions) withDefaults() ExecOptions {
	if o.NumTypes == 0 {
		o.NumTypes = 120
	}
	if o.RuleCount == 0 {
		o.RuleCount = 20000
	}
	if o.ItemCount == 0 {
		o.ItemCount = 2000
	}
	if o.Workers == 0 {
		o.Workers = 8
	}
	return o
}

// buildBigRulebase assembles a rulebase of roughly target size the way a
// production system accumulates one: analyst seed rules, mined candidate
// rules (selection off — the paper's 874K candidate pool is exactly the
// kind of mass a system that keeps "adding rules" ends up with), and
// mechanical variants.
func buildBigRulebase(opts ExecOptions, cat *catalog.Catalog, labeled []*catalog.Item) []*core.Rule {
	rb := core.NewRulebase()
	_ = SeedRules(cat, rb, "ana")
	res, err := mining.GenerateRules(labeled, mining.Options{
		MinSupport:      0.01,
		MaxRulesPerType: 1 << 30, // keep everything; we want mass
		AllowTrainingFP: true,
	})
	if err == nil {
	outer:
		for _, t := range sortedKeys(res.PerType) {
			for _, c := range res.PerType[t] {
				if rb.Len() >= opts.RuleCount {
					break outer
				}
				clone, err := coreWhitelist(c.Rule.Source, c.Rule.TargetType, c.Confidence)
				if err != nil {
					continue
				}
				_, _ = rb.Add(clone, "mined")
			}
		}
	}
	// Mechanical variants pad the remainder (rare at default scales).
	for i := 0; rb.Len() < opts.RuleCount; i++ {
		ty := cat.Types()[i%len(cat.Types())]
		src := fmt.Sprintf("%s.*variant%d", firstHead(ty), i)
		r, err := core.NewWhitelist(src, ty.Name)
		if err != nil {
			continue
		}
		_, _ = rb.Add(r, "padding")
	}
	return rb.Active()
}

func firstHead(ty *catalog.TypeSpec) string {
	if len(ty.HeadTerms) > 0 {
		return ty.HeadTerms[0].Text
	}
	return ty.Name
}

// E4 reproduces the §4/§5.3 execution challenge: naive scanning of tens of
// thousands of rules per item is slow; indexing the rules gives
// order-of-magnitude speedups; sharded parallel execution scales further.
func E4(opts ExecOptions) *Report {
	opts = opts.withDefaults()
	rep := &Report{
		ID:    "E4",
		Title: "Rule execution at scale: naive vs indexed vs parallel",
		PaperClaim: "\"A major challenge is to scale up the execution of tens of thousands " +
			"of rules\"; the proposed solutions are rule indexing (§5.3: locate only the " +
			"rules likely to match an item) and cluster execution.",
		Headers: []string{"executor", "total time", "µs/item", "speedup vs naive"},
		Notes: fmt.Sprintf("%d rules over %d items, %d workers for the parallel run (Hadoop → goroutine shards)",
			opts.RuleCount, opts.ItemCount, opts.Workers),
	}
	cat := catalog.New(catalog.Config{Seed: opts.Seed + 41, NumTypes: opts.NumTypes})
	labeled := cat.LabeledData(8000)
	rules := buildBigRulebase(opts, cat, labeled)
	items := cat.GenerateBatch(catalog.BatchSpec{Size: opts.ItemCount, Epoch: 0})

	seq := core.NewSequentialExecutor(rules)
	idx := core.NewIndexedExecutor(rules)
	df := core.TokenDF(items)
	idxDF := core.NewIndexedExecutorWithDF(rules, df)
	bm := core.NewBatchMatcher(idxDF.Index())

	// ExecuteBatchItemwise pins the per-item reference path: plain
	// ExecuteBatch now routes indexed executors through the batch-inverted
	// matcher, which is measured separately below.
	tNaive := timeIt(func() { core.ExecuteBatchItemwise(seq, items, 1) })
	tIndexed := timeIt(func() { core.ExecuteBatchItemwise(idx, items, 1) })
	tIndexedDF := timeIt(func() { core.ExecuteBatchItemwise(idxDF, items, 1) })
	tParallel := timeIt(func() { core.ExecuteBatchItemwise(idxDF, items, opts.Workers) })
	tBatch := timeIt(func() { bm.MatchBatch(items, 1) })
	tBatchPar := timeIt(func() { bm.MatchBatch(items, opts.Workers) })

	perItem := func(d time.Duration) string {
		return fmt.Sprintf("%.1f", float64(d.Microseconds())/float64(len(items)))
	}
	rep.AddRow("sequential scan", tNaive.Round(time.Millisecond).String(), perItem(tNaive), "1.0x")
	rep.AddRow("rule index (witness-set size)", tIndexed.Round(time.Millisecond).String(), perItem(tIndexed),
		fmt.Sprintf("%.1fx", float64(tNaive)/float64(tIndexed)))
	rep.AddRow("rule index (frequency-aware keys)", tIndexedDF.Round(time.Millisecond).String(), perItem(tIndexedDF),
		fmt.Sprintf("%.1fx", float64(tNaive)/float64(tIndexedDF)))
	rep.AddRow(fmt.Sprintf("frequency-aware index + %d workers", opts.Workers), tParallel.Round(time.Millisecond).String(), perItem(tParallel),
		fmt.Sprintf("%.1fx", float64(tNaive)/float64(tParallel)))
	rep.AddRow("batch-inverted matcher", tBatch.Round(time.Millisecond).String(), perItem(tBatch),
		fmt.Sprintf("%.1fx", float64(tNaive)/float64(tBatch)))
	rep.AddRow(fmt.Sprintf("batch-inverted matcher + %d workers", opts.Workers), tBatchPar.Round(time.Millisecond).String(), perItem(tBatchPar),
		fmt.Sprintf("%.1fx", float64(tNaive)/float64(tBatchPar)))

	// Verify the speedups changed nothing.
	agree := true
	probe := items
	if len(probe) > 200 {
		probe = probe[:200]
	}
	bvs := bm.MatchBatch(probe, 1)
	for i, it := range probe {
		sv := seq.Apply(it)
		if !core.VerdictsEqual(sv, idx.Apply(it)) || !core.VerdictsEqual(sv, idxDF.Apply(it)) ||
			!core.VerdictsEqual(sv, bvs[i]) {
			agree = false
			break
		}
	}
	rep.Findingf("all executors agree on all %d probed items: %v", len(probe), agree)
	rep.Findingf("actual rulebase size: %d rules (paper: 20,459)", len(rules))
	cores := runtime.NumCPU()
	if cores == 1 {
		rep.Findingf("host has 1 CPU: the worker-sharded run measures coordination overhead only; on multi-core hosts it scales with cores")
	}

	parallelOK := tParallel < tIndexedDF || cores == 1
	// The batch join must at least not regress the itemwise indexed path
	// (2x slack: at E4's default scale the itemwise path is already
	// microseconds per item, so constant factors dominate).
	batchOK := tBatch <= tIndexedDF*2
	rep.ShapeOK = agree && tIndexedDF*10 < tNaive && tIndexedDF <= tIndexed && parallelOK && batchOK
	return rep
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// E5 reproduces the §4 rule-system-properties proposal: prove/check that
// under whitelist-before-blacklist staged semantics the output is invariant
// to execution order, and show the checker refuting the property for a
// first-match-wins design.
func E5(opts ExecOptions) *Report {
	opts = opts.withDefaults()
	rep := &Report{
		ID:    "E5",
		Title: "Order-independence of the rule system",
		PaperClaim: "\"One such property could be: the output of the system remains the same " +
			"regardless of the order in which the rules are being executed\"; Chimera's " +
			"whitelist-before-blacklist staging makes order within each stage irrelevant (§4).",
		Headers: []string{"design", "property holds", "permutations tried", "witness"},
	}
	cat := catalog.New(catalog.Config{Seed: opts.Seed + 51, NumTypes: 60})
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 300, Epoch: 1})

	rb := core.NewRulebase()
	_ = SeedRules(cat, rb, "ana")
	rules := rb.Active()

	r := randx.New(opts.Seed + 52)
	staged := core.CheckOrderIndependence(rules, items, r, 40)
	rep.AddRow("staged set semantics (Chimera)", staged.Holds, staged.PermutationsTried, truncate(staged.Witness, 60))

	// Counter-design: first-match-wins. The same checker logic applied to a
	// first-match classifier finds an order witness.
	fmHolds, fmTried, fmWitness := checkFirstMatchOrder(rules, items, r, 40)
	rep.AddRow("first-match-wins (counter-design)", fmHolds, fmTried, truncate(fmWitness, 60))

	rep.Findingf("the checker validates the production design and refutes the naive one — the §4 program of proving/designing for properties")
	rep.ShapeOK = staged.Holds && !fmHolds
	return rep
}

// checkFirstMatchOrder permutes rule order under first-match-wins semantics.
func checkFirstMatchOrder(rules []*core.Rule, items []*catalog.Item, r *randx.Rand, trials int) (holds bool, tried int, witness string) {
	classify := func(order []*core.Rule, it *catalog.Item) string {
		for _, rule := range order {
			if rule.Kind != core.Whitelist && rule.Kind != core.Gate {
				continue
			}
			if rule.Matches(it) {
				return rule.TargetType
			}
		}
		return ""
	}
	baseline := make([]string, len(items))
	for i, it := range items {
		baseline[i] = classify(rules, it)
	}
	tried = 1
	for t := 0; t < trials; t++ {
		perm := r.Perm(len(rules))
		shuffled := make([]*core.Rule, len(rules))
		for i, j := range perm {
			shuffled[i] = rules[j]
		}
		tried++
		for i, it := range items {
			if got := classify(shuffled, it); got != baseline[i] {
				return false, tried, fmt.Sprintf("item %s: %q vs %q", it.ID, got, baseline[i])
			}
		}
	}
	return true, tried, ""
}

func truncate(s string, n int) string {
	if s == "" {
		return "—"
	}
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// E11 reproduces the §4 maintenance agenda at rulebase scale: subsumption
// (the paper's denim.*jeans? ⊂ jeans? example), duplicates, significant
// overlaps (the two abrasive-wheel rules), staleness after a taxonomy
// split (pants → work pants / jeans), and consolidation with its
// debuggability trade-off.
func E11(opts ExecOptions) *Report {
	opts = opts.withDefaults()
	rep := &Report{
		ID:    "E11",
		Title: "Rule maintenance analyses over a large rulebase",
		PaperClaim: "Detect subsumed rules (denim.*jeans? ⊂ jeans?), duplicates added " +
			"independently by two analysts, significantly overlapping rules (the two " +
			"abrasive-wheels regexes), rules invalidated by a taxonomy split, and weigh " +
			"consolidation against debuggability (§4).",
		Headers: []string{"analysis", "found", "elapsed"},
		Notes:   fmt.Sprintf("rulebase of ~%d rules (mined + seed + injected redundancy)", opts.RuleCount),
	}
	cat := catalog.New(catalog.Config{Seed: opts.Seed + 61, NumTypes: opts.NumTypes})
	labeled := cat.LabeledData(8000)
	rules := buildBigRulebase(opts, cat, labeled)

	// Inject the paper's motifs on top of the organic mass.
	rb := core.NewRulebase()
	for _, r := range rules {
		clone := *r
		clone.ID = ""
		_, _ = rb.Add(&clone, r.Author)
	}
	inject := func(kind core.Kind, src, target string) {
		var r *core.Rule
		var err error
		if kind == core.Whitelist {
			r, err = core.NewWhitelist(src, target)
		} else {
			r, err = core.NewBlacklist(src, target)
		}
		if err == nil {
			_, _ = rb.Add(r, "ana2")
		}
	}
	inject(core.Whitelist, "jeans?", "jeans")
	inject(core.Whitelist, "denim.*jeans?", "jeans")
	inject(core.Whitelist, "jeans?", "jeans") // duplicate by a second analyst
	inject(core.Whitelist, "(abrasive|sand(er|ing))[ -](wheels?|discs?)", "abrasive wheels & discs")
	inject(core.Whitelist, "abrasive.*(wheels?|discs?)", "abrasive wheels & discs")
	inject(core.Whitelist, "pants?", "pants") // taxonomy-split victim

	active := rb.Active()
	corpus := cat.GenerateBatch(catalog.BatchSpec{Size: 4000, Epoch: 1})
	di := core.NewDataIndex(corpus)

	tSub := time.Now()
	subs := core.FindSubsumed(active)
	dSub := time.Since(tSub)
	rep.AddRow("subsumed pairs", len(subs), dSub.Round(time.Millisecond).String())

	tDup := time.Now()
	dups := core.FindDuplicates(active)
	dDup := time.Since(tDup)
	rep.AddRow("duplicate pairs", len(dups), dDup.Round(time.Millisecond).String())

	tOv := time.Now()
	overlaps := core.FindOverlaps(active, di, 0.3)
	dOv := time.Since(tOv)
	rep.AddRow("significant overlaps (Jaccard ≥ 0.3)", len(overlaps), dOv.Round(time.Millisecond).String())

	valid := map[string]bool{}
	for _, ty := range cat.Types() {
		valid[ty.Name] = true
	}
	valid["work pants"] = true // split result; "pants" itself is gone
	tSt := time.Now()
	stale := core.FindStale(active, di, valid)
	dSt := time.Since(tSt)
	rep.AddRow("stale rules (no coverage or dead target)", len(stale), dSt.Round(time.Millisecond).String())

	tCon := time.Now()
	cons := core.ConsolidateWhitelists(active)
	dCon := time.Since(tCon)
	merged := 0
	for _, c := range cons {
		merged += len(c.SourceIDs)
	}
	rep.AddRow(fmt.Sprintf("consolidations (%d rules → %d)", merged, len(cons)), len(cons), dCon.Round(time.Millisecond).String())

	// Verify the paper's specific motifs were caught.
	foundJeansSub := false
	for _, s := range subs {
		if rb.Get(s.SpecificID).Source == "denim.*jeans?" {
			foundJeansSub = true
		}
	}
	foundAbrasiveOverlap := false
	for _, o := range overlaps {
		a, b := rb.Get(o.AID).Source, rb.Get(o.BID).Source
		if (a == "(abrasive|sand(er|ing))[ -](wheels?|discs?)" && b == "abrasive.*(wheels?|discs?)") ||
			(b == "(abrasive|sand(er|ing))[ -](wheels?|discs?)" && a == "abrasive.*(wheels?|discs?)") {
			foundAbrasiveOverlap = true
		}
	}
	foundPantsStale := false
	for _, s := range stale {
		if rb.Get(s.RuleID).TargetType == "pants" {
			foundPantsStale = true
		}
	}
	rep.Findingf("paper motifs detected: jeans subsumption %v, abrasive overlap %v, pants staleness %v",
		foundJeansSub, foundAbrasiveOverlap, foundPantsStale)

	// Consolidation trade-off: merged rules preserve matches but blame
	// attribution needs SplitConsolidated.
	preserved := true
	for _, c := range cons[:min(len(cons), 20)] {
		for _, id := range c.SourceIDs {
			src := rb.Get(id)
			for _, m := range di.Matches(src)[:min(len(di.Matches(src)), 5)] {
				if !c.MergedRule.Matches(corpus[m]) {
					preserved = false
				}
			}
			if core.SplitConsolidated(c.MergedRule) == nil {
				preserved = false
			}
		}
	}
	rep.Findingf("consolidation preserves coverage and split-back provenance: %v", preserved)

	rep.ShapeOK = foundJeansSub && foundAbrasiveOverlap && foundPantsStale &&
		len(dups) > 0 && preserved
	return rep
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
