package experiments

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/chimera"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/social"
)

// ClassifyOptions scales E1/E10.
type ClassifyOptions struct {
	Seed      uint64
	NumTypes  int     // default 150
	TrainSize int     // default 12000
	TestSize  int     // default 6000
	ZipfS     float64 // default 1.3 (steeper head/tail skew than the catalog default)
	TestEpoch int     // default 1: mild vocabulary drift between train and test
}

func (o ClassifyOptions) withDefaults() ClassifyOptions {
	if o.NumTypes == 0 {
		o.NumTypes = 150
	}
	if o.TrainSize == 0 {
		o.TrainSize = 12000
	}
	if o.TestSize == 0 {
		o.TestSize = 6000
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.3
	}
	if o.TestEpoch == 0 {
		o.TestEpoch = 1
	}
	return o
}

// E1 reproduces §3.3's headline numbers: the learning-only ensemble misses
// the 92% precision gate; adding the rule-based and attribute/value
// classifiers lifts precision above the gate and raises recall; and a large
// fraction of product types, having little or no training data, are handled
// primarily by rules.
func E1(opts ClassifyOptions) *Report {
	opts = opts.withDefaults()
	rep := &Report{
		ID:    "E1",
		Title: "Chimera precision/recall: learning-only vs rules-only vs combined",
		PaperClaim: "Learning-only did not reach the 92% gate; adding rules kept precision " +
			"at 92–93% over 16M items while improving recall; ~30% of types had insufficient " +
			"training data and were handled primarily by rules (§3.3).",
		Headers: []string{"configuration", "precision", "recall", "decline rate"},
		Notes: fmt.Sprintf("catalog of %d types, %d training / %d test items (vs 5,000+ types, 852K/16M in production)",
			opts.NumTypes, opts.TrainSize, opts.TestSize),
	}

	cat := catalog.New(catalog.Config{Seed: opts.Seed, NumTypes: opts.NumTypes, ZipfS: opts.ZipfS})
	train := cat.LabeledData(opts.TrainSize)
	// Test data arrives after training data (§2.2: the distribution is not
	// static), so it carries the next epoch's vocabulary.
	test := cat.GenerateBatch(catalog.BatchSpec{Size: opts.TestSize, Epoch: opts.TestEpoch})

	run := func(name string, useRules, useLearning bool) (prec, rec, decl float64) {
		// VoteThreshold 0.62: the system declines marginal ensemble-only
		// predictions — precision over recall, per the §2.2 requirement.
		p := chimera.New(chimera.Config{Seed: opts.Seed + 11, Workers: 8, VoteThreshold: 0.62})
		if useLearning {
			p.Train(train)
		}
		if useRules {
			if err := SeedRules(cat, p.Rules, "ana"); err != nil {
				rep.Findingf("seed rules failed: %v", err)
				return 0, 0, 1
			}
		}
		res := p.ProcessBatch(test)
		if useRules && useLearning {
			// The full system runs the Figure-2 loop: evaluate a crowd
			// sample; while the estimate misses the gate, incorporate the
			// analysts' feedback (patch rules + relabeled training data)
			// and rerun the batch — "we incorporate the analysts' feedback
			// into Chimera, rerun the system on the input items, sample and
			// ask the crowd to evaluate, and so on" (§3.3).
			for round := 0; round < 3; round++ {
				ir, err := p.EvaluateAndImprove(res)
				if err != nil {
					rep.Findingf("evaluation failed: %v", err)
					break
				}
				if ir.PassedGate {
					break
				}
				res = p.ProcessBatch(test)
			}
		}
		prec, rec = res.TruePrecisionRecall()
		return prec, rec, res.DeclineRate()
	}

	learnP, learnR, learnD := run("learning-only", false, true)
	rulesP, rulesR, rulesD := run("rules-only", true, false)
	bothP, bothR, bothD := run("rules+learning", true, true)

	rep.AddRow("learning-only ensemble (single pass)", learnP, learnR, learnD)
	rep.AddRow("rules-only", rulesP, rulesR, rulesD)
	rep.AddRow("rules+learning with repair loop (Chimera)", bothP, bothR, bothD)

	covered, uncovered := catalog.SplitTraining(train, 10)
	// Types absent from the training data entirely count as uncovered too.
	uncoveredTotal := len(uncovered) + opts.NumTypes - len(covered) - len(uncovered)
	rep.Findingf("types with <10 training items: %d of %d (%.0f%%) — the paper reports ~30%% handled primarily by rules",
		uncoveredTotal, opts.NumTypes, 100*float64(uncoveredTotal)/float64(opts.NumTypes))
	rep.Findingf("gate = 0.92: learning-only %s it (%.3f), combined %s it (%.3f)",
		passWord(learnP >= 0.92), learnP, passWord(bothP >= 0.92), bothP)
	rep.Findingf("recall: combined %.3f vs learning-only %.3f vs rules-only %.3f", bothR, learnR, rulesR)

	rep.ShapeOK = learnP < 0.92 && bothP >= 0.92 && bothR > rulesR && bothP >= learnP
	return rep
}

func passWord(b bool) string {
	if b {
		return "meets"
	}
	return "misses"
}

// E10 reproduces the ongoing-operation drills of §2.2/§3.2/§6: concept
// drift and a new-vocabulary vendor degrade precision; the monitor detects
// it; scaling the degraded types down restores gate compliance at a recall
// cost; analyst patching (synonym expansion of the affected rules) restores
// recall; and the Tweetbeat monitor survives a decoy episode the same way.
func E10(opts ClassifyOptions) *Report {
	opts = opts.withDefaults()
	rep := &Report{
		ID:    "E10",
		Title: "Drift, degradation detection, scale-down and repair",
		PaperClaim: "Accuracy can suddenly degrade on ever-changing data; the system must " +
			"detect quickly, scale down the bad parts, then repair and restore (§2.2); " +
			"Tweetbeat analysts use rules to scale down a misbehaving event (§6).",
		Headers: []string{"stage", "precision", "recall", "declined"},
		Notes:   "drift = epoch-3 vocabulary + new-vocabulary vendor batch; repair = synonym-expanded rules",
	}

	cat := catalog.New(catalog.Config{Seed: opts.Seed + 3, NumTypes: opts.NumTypes, ZipfS: opts.ZipfS})
	train := cat.LabeledData(opts.TrainSize)
	p := chimera.New(chimera.Config{Seed: opts.Seed + 4, Workers: 8})
	p.Train(train)
	if err := SeedRules(cat, p.Rules, "ana"); err != nil {
		rep.Findingf("seed rules failed: %v", err)
		return rep
	}

	// Stage 0: steady state at epoch 0.
	steady := cat.GenerateBatch(catalog.BatchSpec{Size: opts.TestSize / 2, Epoch: 0})
	res0 := p.ProcessBatch(steady)
	p0, r0 := res0.TruePrecisionRecall()
	rep.AddRow("steady state (epoch 0)", p0, r0, res0.DeclineRate())

	// Stage 1: drift — late-epoch vocabulary from a new-vocabulary vendor.
	drifted := cat.GenerateBatch(catalog.BatchSpec{Size: opts.TestSize / 2, Epoch: 3, Vendor: "brand-new-vendor"})
	res1 := p.ProcessBatch(drifted)
	p1, r1 := res1.TruePrecisionRecall()
	rep.AddRow("drifted batch (epoch 3, new vendor)", p1, r1, res1.DeclineRate())

	// Stage 2: detection via the crowd sample, then scale down the degraded
	// types (those with several flagged errors).
	impRep, err := p.EvaluateAndImprove(res1)
	if err != nil {
		rep.Findingf("evaluation failed: %v", err)
		return rep
	}
	detected := impRep.EstPrecision < 0.92
	rep.Findingf("monitor estimate on drifted batch: %.3f (gate %s)", impRep.EstPrecision, passWord(!detected))

	flagged := chimera.FlaggedFrom(res1, chimera.WrongAgainstGroundTruth)
	degraded := chimera.DegradedTypes(flagged, 5)
	var tokens []*chimera.RestoreToken
	for _, ty := range degraded {
		tok, err := p.ScaleDownType(ty, "ana", "drift drill")
		if err == nil {
			tokens = append(tokens, tok)
		}
	}
	res2 := p.ProcessBatch(drifted)
	p2, r2 := res2.TruePrecisionRecall()
	rep.AddRow(fmt.Sprintf("after scale-down of %d types", len(degraded)), p2, r2, res2.DeclineRate())

	// Stage 3: repair — analysts expand the affected types' rules with the
	// emerged synonyms (the §5.1 tool's job), then restore.
	for _, tok := range tokens {
		_ = p.Restore(tok, "ana")
	}
	repaired := 0
	for _, ty := range cat.Types() {
		for _, s := range ty.Synonyms {
			if s.EmergeEpoch > 0 && s.EmergeEpoch <= 3 {
				r, err := core.NewWhitelist(s.Text, ty.Name)
				if err != nil {
					continue
				}
				r.Provenance = "synonym-tool"
				if _, err := p.Rules.Add(r, "ana"); err == nil {
					repaired++
				}
			}
		}
	}
	res3 := p.ProcessBatch(drifted)
	p3, r3 := res3.TruePrecisionRecall()
	rep.AddRow(fmt.Sprintf("after repair (+%d synonym rules)", repaired), p3, r3, res3.DeclineRate())

	// Tweetbeat drill.
	base := kb.Build(kb.SyntheticSource(opts.Seed, 0))
	events := []social.Event{{
		Name:     "championship-final",
		Keywords: []string{"final", "goal", "match", "stadium", "score"},
		Entities: []string{"river city rovers", "harbor city hawks"},
	}}
	mon := social.NewMonitor(social.NewTagger(base), events)
	stream := social.NewStream(opts.Seed+9, base, events)
	bad := stream.Window(social.WindowOptions{Size: 1200, ConfusingEvent: "championship-final", PConfusing: 0.35})
	before := mon.EvaluateWindow(bad)["championship-final"]
	mon.ScaleDown("championship-final", 2)
	after := mon.EvaluateWindow(bad)["championship-final"]
	rep.Findingf("tweetbeat decoy episode: precision %.3f → %.3f after scale-down (recall %.3f → %.3f)",
		before.Precision, after.Precision, before.Recall, after.Recall)

	rep.ShapeOK = p1 < p0 && detected && p2 > p1 && r3 > r2 && after.Precision > before.Precision
	return rep
}
