package experiments

// RunAll executes every experiment at its default (reduced) scale with the
// given seed and returns the reports in E-number order. It is the engine
// behind `cmd/experiments -all` and the source of EXPERIMENTS.md.
func RunAll(seed uint64) []*Report {
	return []*Report{
		E1(ClassifyOptions{Seed: seed}),
		E2(SynonymOptions{Seed: seed}),
		E3(RuleGenOptions{Seed: seed}),
		E4(ExecOptions{Seed: seed}),
		E5(ExecOptions{Seed: seed}),
		E6(EvalOptions{Seed: seed}),
		E7(SisterOptions{Seed: seed}),
		E8(SisterOptions{Seed: seed}),
		E9(SisterOptions{Seed: seed}),
		E10(ClassifyOptions{Seed: seed}),
		E11(ExecOptions{Seed: seed}),
	}
}

// ByID runs a single experiment by its identifier ("E1" … "E11"), returning
// nil for unknown IDs.
func ByID(id string, seed uint64) *Report {
	switch id {
	case "E1":
		return E1(ClassifyOptions{Seed: seed})
	case "E2":
		return E2(SynonymOptions{Seed: seed})
	case "E3":
		return E3(RuleGenOptions{Seed: seed})
	case "E4":
		return E4(ExecOptions{Seed: seed})
	case "E5":
		return E5(ExecOptions{Seed: seed})
	case "E6":
		return E6(EvalOptions{Seed: seed})
	case "E7":
		return E7(SisterOptions{Seed: seed})
	case "E8":
		return E8(SisterOptions{Seed: seed})
	case "E9":
		return E9(SisterOptions{Seed: seed})
	case "E10":
		return E10(ClassifyOptions{Seed: seed})
	case "E11":
		return E11(ExecOptions{Seed: seed})
	default:
		return nil
	}
}
