package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/chimera"
	"repro/internal/crowd"
	"repro/internal/mining"
	"repro/internal/pattern"
	"repro/internal/randx"
	"repro/internal/synonym"
	"repro/internal/tokenize"
)

// synInput is one of the 25 tool inputs of the §5.1 evaluation: a pattern
// with a \syn slot and the target type whose vocabulary defines the oracle.
type synInput struct {
	Pattern string
	Type    string
}

// synInputs mirrors the paper's 25 randomly-selected analyst regexes,
// rebuilt against the synthetic lexicon. The last entry deliberately
// matches nothing in the corpus, reproducing the paper's 1-in-25 failure.
var synInputs = []synInput{
	{`(area | \syn) rugs?`, "area rugs"},
	{`(athletic | \syn) gloves?`, "athletic gloves"},
	{`(boys? | \syn) shorts?`, "shorts"},
	{`(abrasive | \syn) (wheels? | discs?)`, "abrasive wheels & discs"},
	{`(motor | engine | \syn) oils?`, "motor oil"},
	{`(denim | \syn) jeans?`, "jeans"},
	{`(laptop | \syn) (bag | case | sleeve)s?`, "laptop bags & cases"},
	{`(usb | \syn) cables?`, "computer cables"},
	{`(dining | \syn) chairs?`, "dining chairs"},
	{`(table | \syn) lamps?`, "table lamps"},
	{`(blackout | \syn) curtains?`, "curtains"},
	{`(dome | \syn) tents?`, "camping tents"},
	{`(fishing | \syn) rods?`, "fishing rods"},
	{`(baby | \syn) bottles?`, "baby bottles"},
	{`(ballpoint | \syn) pens?`, "ballpoint pens"},
	{`(printer | copy | \syn) paper`, "printer paper"},
	{`(garden | \syn) hoses?`, "garden hoses"},
	{`(lawn | \syn) mowers?`, "lawn mowers"},
	{`(cat | \syn) litter`, "cat litter"},
	{`(dog | \syn) food`, "dog food"},
	{`(ground | \syn) coffee`, "ground coffee"},
	{`(snack | granola | \syn) bars?`, "snack bars"},
	{`(yoga | exercise | \syn) mats?`, "yoga mats"},
	{`(diamond | \syn) rings?`, "rings"},
	{`(quantum | \syn) hyperdrives?`, "—none—"}, // the failure case
}

// SynonymOptions scales E2.
type SynonymOptions struct {
	Seed       uint64
	CorpusSize int // default 12000
	MaxIter    int // default 10
}

func (o SynonymOptions) withDefaults() SynonymOptions {
	if o.CorpusSize == 0 {
		o.CorpusSize = 12000
	}
	if o.MaxIter == 0 {
		o.MaxIter = 10
	}
	return o
}

// E2 reproduces the §5.1 tool evaluation and Table 1: 25 analyst patterns,
// synonyms found for 24, count range 2–24 with mean ≈7, within three
// feedback iterations, in minutes not hours.
func E2(opts SynonymOptions) *Report {
	opts = opts.withDefaults()
	rep := &Report{
		ID:    "E2",
		Title: "Synonym-finder tool (Table 1 + §5.1 evaluation)",
		PaperClaim: "25 input regexes → synonyms found for 24, within 3 iterations; " +
			"min 2 / max 24 / mean ≈7 synonyms per regex; ~4 analyst minutes per regex " +
			"instead of hours.",
		Headers: []string{"input pattern", "type", "synonyms", "iterations", "shown", "sample synonyms found"},
		Notes: fmt.Sprintf("%d-title corpus, oracle analyst backed by the lexicon's ground-truth vocabulary",
			opts.CorpusSize),
	}

	cat := catalog.New(catalog.Config{Seed: opts.Seed + 21, NumTypes: 120})
	items := cat.GenerateBatch(catalog.BatchSpec{Size: opts.CorpusSize, Epoch: 1})
	titles := make([][]string, len(items))
	for i, it := range items {
		titles[i] = it.TitleTokens()
	}

	start := time.Now()
	var counts []float64
	var iters []float64
	withSyn := 0
	for _, in := range synInputs {
		pat, err := pattern.Parse(in.Pattern)
		if err != nil {
			rep.Findingf("pattern %q failed to parse: %v", in.Pattern, err)
			continue
		}
		tool, err := synonym.NewTool(pat, titles, synonym.Options{})
		if err != nil {
			rep.AddRow(in.Pattern, in.Type, 0, 0, 0, "(no corpus matches)")
			counts = append(counts, 0)
			continue
		}
		oracle := lexiconOracle(cat, in.Type)
		stats := synonym.RunSession(tool, oracle, opts.MaxIter, 3)
		found := tool.Accepted()
		if len(found) > 0 {
			withSyn++
		}
		counts = append(counts, float64(len(found)))
		iters = append(iters, float64(stats.Iterations))
		rep.AddRow(in.Pattern, in.Type, len(found), stats.Iterations, stats.CandidatesShown, samplephrases(found, 6))
	}
	elapsed := time.Since(start)

	rep.Findingf("synonyms found for %d of %d patterns (paper: 24 of 25)", withSyn, len(synInputs))
	rep.Findingf("synonyms per pattern: min %.0f / max %.0f / mean %.1f (paper: 2 / 24 / ≈7)",
		minNonFailed(counts), randx.Percentile(counts, 100), randx.Mean(counts))
	rep.Findingf("mean feedback iterations: %.1f (paper: ≤3)", randx.Mean(iters))
	rep.Findingf("tool wall-clock for all %d sessions: %v (the analyst cost is the shown-candidate count above; the paper's manual alternative was hours per regex)",
		len(synInputs), elapsed.Round(time.Millisecond))

	rep.ShapeOK = withSyn >= len(synInputs)-2 && randx.Mean(counts) >= 3 && randx.Mean(iters) <= 5
	return rep
}

// lexiconOracle accepts a candidate phrase when it genuinely belongs to the
// target type's vocabulary (modifier, brand, or synonym-head prefix).
func lexiconOracle(cat *catalog.Catalog, typeName string) synonym.Oracle {
	spec := cat.TypeByName(typeName)
	valid := map[string]bool{}
	if spec != nil {
		for _, m := range spec.Modifiers {
			valid[m] = true
			// Multi-word modifiers validate their prefixes too ("cotton
			// blend" → "cotton blend", "blend" alone stays invalid).
		}
		for _, b := range spec.Brands {
			valid[b] = true
		}
		for _, s := range append(spec.Synonyms, spec.HeadTerms...) {
			toks := tokenize.Tokenize(s.Text)
			if len(toks) > 1 {
				valid[strings.Join(toks[:len(toks)-1], " ")] = true
			}
		}
	}
	return func(phrase []string) bool { return valid[strings.Join(phrase, " ")] }
}

func samplephrases(phrases [][]string, n int) string {
	var out []string
	for i, ph := range phrases {
		if i >= n {
			break
		}
		out = append(out, strings.Join(ph, " "))
	}
	if len(out) == 0 {
		return "—"
	}
	return strings.Join(out, ", ")
}

func minNonFailed(xs []float64) float64 {
	min := -1.0
	for _, x := range xs {
		if x == 0 {
			continue
		}
		if min < 0 || x < min {
			min = x
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// RuleGenOptions scales E3.
type RuleGenOptions struct {
	Seed       uint64
	NumTypes   int     // default 120
	TrainSize  int     // default 12000
	TestSize   int     // default 6000
	MinSupport float64 // default 0.02
}

func (o RuleGenOptions) withDefaults() RuleGenOptions {
	if o.NumTypes == 0 {
		o.NumTypes = 120
	}
	if o.TrainSize == 0 {
		o.TrainSize = 12000
	}
	if o.TestSize == 0 {
		o.TestSize = 6000
	}
	if o.MinSupport == 0 {
		o.MinSupport = 0.02
	}
	return o
}

// E3 reproduces the §5.2 evaluation: mine labeled data into candidate
// rules, select with Greedy-Biased (α=0.7), verify that the high-confidence
// set out-scores the low-confidence set and both clear the 92% gate, and
// that deploying the generated rules cuts the system's declined items
// (paper: 18% reduction) without dropping precision below the gate.
// It also runs the Greedy-vs-Greedy-Biased ablation DESIGN.md calls out.
func E3(opts RuleGenOptions) *Report {
	opts = opts.withDefaults()
	rep := &Report{
		ID:    "E3",
		Title: "Rule generation from labeled data (§5.2)",
		PaperClaim: "885K labeled items / 3707 types → 874K mined candidates → 63K high- + " +
			"37K low-confidence rules (α=0.7); estimated precision 95% / 92%; deploying them " +
			"cut declined items by 18% while precision stayed ≥92%.",
		Headers: []string{"quantity", "measured", "paper (at production scale)"},
		Notes: fmt.Sprintf("%d labeled items, %d types, AprioriAll min-support %.3f",
			opts.TrainSize, opts.NumTypes, opts.MinSupport),
	}

	cat := catalog.New(catalog.Config{Seed: opts.Seed + 31, NumTypes: opts.NumTypes})
	labeled := cat.LabeledData(opts.TrainSize)
	res, err := mining.GenerateRules(labeled, mining.Options{MinSupport: opts.MinSupport})
	if err != nil {
		rep.Findingf("mining failed: %v", err)
		return rep
	}
	rep.AddRow("labeled items", opts.TrainSize, "885K")
	rep.AddRow("types in labeled data", len(res.PerType), "3707")
	rep.AddRow("mined candidate rules", res.TotalCandidates, "874K")
	rep.AddRow("selected high-confidence rules", len(res.High), "63K")
	rep.AddRow("selected low-confidence rules", len(res.Low), "37K")

	// Estimate precision of each set with the crowd, per the paper.
	test := cat.GenerateBatch(catalog.BatchSpec{Size: opts.TestSize, Epoch: 0})
	cr := crowd.New(crowd.Config{Seed: opts.Seed + 32})
	rng := randx.New(opts.Seed + 33)
	precOf := func(cands []mining.Candidate) float64 {
		// Module-style estimate over the set's matches on fresh data.
		sampled, correct := 0, 0
		di := newDataIndex(test)
		for _, c := range cands {
			for _, m := range di.Matches(c.Rule) {
				if sampled >= 600 {
					break
				}
				if rng.Bool(0.25) {
					continue
				}
				ok, err := cr.VerifyClaim(test[m].TrueType == c.Rule.TargetType)
				if err != nil {
					return 0
				}
				sampled++
				if ok {
					correct++
				}
			}
		}
		if sampled == 0 {
			return 0
		}
		return float64(correct) / float64(sampled)
	}
	precHigh := precOf(res.High)
	precLow := precOf(res.Low)
	rep.AddRow("precision of high-confidence set", precHigh, "0.95")
	rep.AddRow("precision of low-confidence set", precLow, "0.92")

	// Deployment: decline-rate reduction on a pipeline without seed rules.
	declBefore, declAfter, precBefore, precAfter := deployMinedRules(opts, cat, labeled, test, res)
	reduction := 0.0
	if declBefore > 0 {
		reduction = (declBefore - declAfter) / declBefore
	}
	rep.AddRow("decline rate before deploying rules", declBefore, "—")
	rep.AddRow("decline rate after deploying rules", declAfter, "—")
	rep.AddRow("decline reduction", fmt.Sprintf("%.0f%%", 100*reduction), "18%")
	rep.AddRow("pipeline precision before/after", fmt.Sprintf("%.3f / %.3f", precBefore, precAfter), "≥0.92 maintained")

	// Ablation: Greedy vs Greedy-Biased mean selected confidence.
	var allCands []mining.Candidate
	for _, t := range sortedKeys(res.PerType) {
		allCands = append(allCands, res.PerType[t]...)
	}
	plain := mining.Greedy(allCands, len(res.High)+len(res.Low))
	biasedConf, plainConf := meanConf(append(append([]mining.Candidate{}, res.High...), res.Low...)), meanConf(plain)
	rep.Findingf("ablation — mean confidence of selected rules: Greedy-Biased %.3f vs plain Greedy %.3f (the paper adopted the biased variant because analysts prefer high-confidence rules)",
		biasedConf, plainConf)

	rep.ShapeOK = res.TotalCandidates > len(res.High)+len(res.Low) &&
		len(res.High) > 0 && len(res.Low) > 0 &&
		precHigh >= precLow && precLow >= 0.85 &&
		reduction > 0.05 && precAfter >= 0.9 && biasedConf >= plainConf
	return rep
}

func meanConf(cands []mining.Candidate) float64 {
	if len(cands) == 0 {
		return 0
	}
	var s float64
	for _, c := range cands {
		s += c.Confidence
	}
	return s / float64(len(cands))
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// deployMinedRules measures decline rates before/after adding the mined
// rules to a learning-only pipeline.
func deployMinedRules(opts RuleGenOptions, cat *catalog.Catalog, labeled, test []*catalog.Item, res *mining.Result) (declBefore, declAfter, precBefore, precAfter float64) {
	p := chimera.New(chimera.Config{Seed: opts.Seed + 34, Workers: 8})
	p.Train(labeled)
	before := p.ProcessBatch(test)
	declBefore = before.DeclineRate()
	precBefore, _ = before.TruePrecisionRecall()

	for _, r := range res.Selected() {
		clone := *r
		clone.ID = "" // fresh IDs inside this rulebase
		recompiled, err := coreWhitelist(clone.Source, clone.TargetType, clone.Confidence)
		if err != nil {
			continue
		}
		_, _ = p.Rules.Add(recompiled, "mined")
	}
	after := p.ProcessBatch(test)
	declAfter = after.DeclineRate()
	precAfter, _ = after.TruePrecisionRecall()
	return declBefore, declAfter, precBefore, precAfter
}
