package experiments

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
)

// The experiment functions run at full scale from cmd/experiments and the
// root benchmarks; tests exercise them at reduced scale and assert the
// structural invariants that must hold at any scale.

func TestSeedRules(t *testing.T) {
	cat := catalog.New(catalog.Config{Seed: 1, NumTypes: 60})
	rb := core.NewRulebase()
	if err := SeedRules(cat, rb, "ana"); err != nil {
		t.Fatal(err)
	}
	s := rb.Stats()
	if s.ByKind["whitelist"] == 0 || s.ByKind["gate"] == 0 ||
		s.ByKind["attr-exists"] == 0 || s.ByKind["attr-value"] == 0 ||
		s.ByKind["blacklist"] == 0 {
		t.Fatalf("seed rulebase missing kinds: %+v", s.ByKind)
	}
	// Ambiguous single-token heads must not become whitelists for two types.
	targets := map[string]map[string]bool{}
	for _, r := range rb.Active(core.Whitelist) {
		if targets[r.Source] == nil {
			targets[r.Source] = map[string]bool{}
		}
		targets[r.Source][r.TargetType] = true
		if len(targets[r.Source]) > 1 {
			t.Fatalf("ambiguous seed whitelist %q targets %v", r.Source, targets[r.Source])
		}
	}
}

func TestE1Small(t *testing.T) {
	rep := E1(ClassifyOptions{Seed: 5, NumTypes: 60, TrainSize: 3000, TestSize: 1200})
	if len(rep.Rows) != 3 {
		t.Fatalf("E1 should compare 3 configurations: %v", rep.Rows)
	}
	if rep.ID != "E1" || rep.PaperClaim == "" {
		t.Fatal("report metadata missing")
	}
}

func TestE2Small(t *testing.T) {
	rep := E2(SynonymOptions{Seed: 5, CorpusSize: 4000, MaxIter: 5})
	if len(rep.Rows) != len(synInputs) {
		t.Fatalf("one row per input pattern expected: %d vs %d", len(rep.Rows), len(synInputs))
	}
	// The shape thresholds are calibrated for the default corpus size; at
	// reduced scale just require that a solid majority of patterns found
	// synonyms and the failure case stayed a failure.
	found := 0
	for _, row := range rep.Rows {
		if row[2] != "0" {
			found++
		}
	}
	if found < 15 {
		t.Fatalf("only %d/%d patterns found synonyms at reduced scale", found, len(synInputs))
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last[2] != "0" {
		t.Fatalf("the no-match pattern should find nothing: %v", last)
	}
}

func TestE3Small(t *testing.T) {
	rep := E3(RuleGenOptions{Seed: 5, NumTypes: 40, TrainSize: 3000, TestSize: 1500, MinSupport: 0.05})
	if len(rep.Rows) < 8 {
		t.Fatalf("E3 table incomplete: %v", rep.Rows)
	}
}

func TestE4Small(t *testing.T) {
	rep := E4(ExecOptions{Seed: 5, NumTypes: 40, RuleCount: 2000, ItemCount: 300})
	if len(rep.Rows) != 6 {
		t.Fatalf("E4 should measure 6 execution strategies: %v", rep.Rows)
	}
	// The 10x speedup threshold needs the full 20k-rule scale; at any scale
	// the executors must agree and indexing must not be slower.
	if len(rep.Findings) == 0 || !strings.Contains(rep.Findings[0], "agree") || !strings.Contains(rep.Findings[0], "true") {
		t.Fatalf("executors must agree: %v", rep.Findings)
	}
}

func TestE5Small(t *testing.T) {
	rep := E5(ExecOptions{Seed: 5})
	if !rep.ShapeOK {
		t.Fatalf("E5 must hold: %v", rep.Rows)
	}
}

func TestE6Small(t *testing.T) {
	rep := E6(EvalOptions{Seed: 5, NumTypes: 40, CorpusSize: 2000, Validation: 300, SamplePerRule: 8})
	if !rep.ShapeOK {
		t.Fatalf("E6 shape should hold at reduced scale: %v\n%v", rep.Findings, rep.Rows)
	}
}

func TestE7Small(t *testing.T) {
	rep := E7(SisterOptions{Seed: 5, NumTypes: 40, TrainSize: 2500, TestSize: 1000})
	if !rep.ShapeOK {
		t.Fatalf("E7 shape should hold: %v\n%v", rep.Findings, rep.Rows)
	}
}

func TestE8Small(t *testing.T) {
	rep := E8(SisterOptions{Seed: 5, NumTypes: 40})
	if !rep.ShapeOK {
		t.Fatalf("E8 shape should hold: %v\n%v", rep.Findings, rep.Rows)
	}
}

func TestE9Small(t *testing.T) {
	rep := E9(SisterOptions{Seed: 5})
	if !rep.ShapeOK {
		t.Fatalf("E9 must hold: %v", rep.Rows)
	}
}

func TestE10Small(t *testing.T) {
	rep := E10(ClassifyOptions{Seed: 5, NumTypes: 60, TrainSize: 2500, TestSize: 1000})
	if len(rep.Rows) != 4 {
		t.Fatalf("E10 should report 4 stages: %v", rep.Rows)
	}
	// The tweetbeat drill is scale-independent and must always appear.
	found := false
	for _, f := range rep.Findings {
		if strings.Contains(f, "tweetbeat") {
			found = true
		}
	}
	if !found {
		t.Fatalf("tweetbeat finding missing: %v", rep.Findings)
	}
}

func TestE11Small(t *testing.T) {
	rep := E11(ExecOptions{Seed: 5, NumTypes: 40, RuleCount: 1500})
	if !rep.ShapeOK {
		t.Fatalf("E11 shape should hold at reduced scale: %v\n%v", rep.Findings, rep.Rows)
	}
}

func TestByID(t *testing.T) {
	if ByID("E99", 1) != nil {
		t.Fatal("unknown id should return nil")
	}
	// Cheap one to verify the dispatch wiring.
	rep := ByID("E9", 1)
	if rep == nil || rep.ID != "E9" {
		t.Fatal("ByID dispatch broken")
	}
}

func TestReportMarkdown(t *testing.T) {
	rep := &Report{
		ID: "EX", Title: "test", PaperClaim: "claim",
		Headers: []string{"a", "b"},
		ShapeOK: true,
		Notes:   "n",
	}
	rep.AddRow("x", 1.5)
	rep.Findingf("finding %d", 7)
	md := rep.Markdown()
	for _, want := range []string{"## EX", "claim", "| a | b |", "| x | 1.500 |", "finding 7", "REPRODUCED"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	rep.ShapeOK = false
	if !strings.Contains(rep.Markdown(), "NOT reproduced") {
		t.Fatal("failure rendering missing")
	}
}

func TestRenderMarkdownSummary(t *testing.T) {
	md := RenderMarkdown([]*Report{
		{ID: "A", ShapeOK: true},
		{ID: "B", ShapeOK: false},
	})
	if !strings.Contains(md, "1/2 experiment shapes reproduced") {
		t.Fatalf("summary wrong:\n%s", md[:200])
	}
}

func TestAddRowTypes(t *testing.T) {
	rep := &Report{}
	rep.AddRow("s", 1, int64(2), 3.25, true, []int{1})
	row := rep.Rows[0]
	if row[0] != "s" || row[1] != "1" || row[2] != "2" || row[3] != "3.250" || row[4] != "true" {
		t.Fatalf("row rendering: %v", row)
	}
}
