package experiments

import (
	"repro/internal/catalog"
	"repro/internal/core"
)

// newDataIndex is a local alias keeping experiment files terse.
func newDataIndex(items []*catalog.Item) *core.DataIndex {
	return core.NewDataIndex(items)
}

// coreWhitelist builds a whitelist rule carrying a mined confidence score.
func coreWhitelist(src, target string, conf float64) (*core.Rule, error) {
	r, err := core.NewWhitelist(src, target)
	if err != nil {
		return nil, err
	}
	r.Confidence = conf
	r.Provenance = "mined"
	return r, nil
}
