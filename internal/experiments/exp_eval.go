package experiments

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/evaluate"
	"repro/internal/mining"
	"repro/internal/randx"
)

// EvalOptions scales E6.
type EvalOptions struct {
	Seed          uint64
	NumTypes      int // default 120
	CorpusSize    int // default 6000
	Validation    int // default 800 (the expensive labeled set)
	SamplePerRule int // default 15
}

func (o EvalOptions) withDefaults() EvalOptions {
	if o.NumTypes == 0 {
		o.NumTypes = 120
	}
	if o.CorpusSize == 0 {
		o.CorpusSize = 6000
	}
	if o.Validation == 0 {
		o.Validation = 800
	}
	if o.SamplePerRule == 0 {
		o.SamplePerRule = 15
	}
	return o
}

// E6 reproduces the §4 rule-quality-evaluation comparison: the global
// validation set evaluates head rules but misses tail rules; per-rule crowd
// sampling is exact but expensive, with Corleone-style overlap sharing
// recovering part of the cost; module-level sampling is cheapest but yields
// no per-rule signal.
func E6(opts EvalOptions) *Report {
	opts = opts.withDefaults()
	rep := &Report{
		ID:    "E6",
		Title: "Three rule-evaluation methods: coverage vs crowd cost",
		PaperClaim: "Method 1 (one validation set) helps evaluate head rules but not tail " +
			"rules; method 2 (per-rule samples, overlap-shared per [18]) works for head " +
			"rules but costs become prohibitive at tens of thousands of rules; method 3 " +
			"(module-level) gives up per-rule estimates to stay affordable (§4).",
		Headers: []string{"method", "rules evaluable", "tail rules evaluable", "crowd questions"},
		Notes: fmt.Sprintf("%d rules (seed + mined), %d-item corpus, %d-item validation set, %d samples/rule",
			0, opts.CorpusSize, opts.Validation, opts.SamplePerRule), // rule count patched below
	}

	cat := catalog.New(catalog.Config{Seed: opts.Seed + 71, NumTypes: opts.NumTypes})
	labeled := cat.LabeledData(5000)
	rb := core.NewRulebase()
	_ = SeedRules(cat, rb, "ana")
	mined, err := mining.GenerateRules(labeled, mining.Options{MinSupport: 0.05, MaxRulesPerType: 3})
	if err == nil {
		for _, r := range mined.Selected() {
			clone, err := coreWhitelist(r.Source, r.TargetType, r.Confidence)
			if err == nil {
				_, _ = rb.Add(clone, "mined")
			}
		}
	}
	rules := rb.Active()
	rep.Notes = fmt.Sprintf("%d rules (seed + mined), %d-item corpus, %d-item validation set, %d samples/rule",
		len(rules), opts.CorpusSize, opts.Validation, opts.SamplePerRule)

	corpus := cat.GenerateBatch(catalog.BatchSpec{Size: opts.CorpusSize, Epoch: 0})
	validation := cat.GenerateBatch(catalog.BatchSpec{Size: opts.Validation, Epoch: 0})
	head, tail := evaluate.HeadTailSplit(rules, corpus, 25)
	tailSet := map[string]bool{}
	for _, r := range tail {
		tailSet[r.ID] = true
	}

	countEvaluable := func(precs map[string]evaluate.RulePrecision) (total, tailN int) {
		for id, p := range precs {
			if p.Evaluable {
				total++
				if tailSet[id] {
					tailN++
				}
			}
		}
		return total, tailN
	}

	// Method 1.
	m1 := evaluate.WithValidationSet(rules, validation)
	m1Total, m1Tail := countEvaluable(m1)
	rep.AddRow("1: global validation set", m1Total, m1Tail, 0)

	// Method 2 without sharing.
	cr := crowd.New(crowd.Config{Seed: opts.Seed + 72})
	m2, err := evaluate.PerRule(rules, corpus, cr, randx.New(opts.Seed+73), opts.SamplePerRule, false)
	if err != nil {
		rep.Findingf("method 2 failed: %v", err)
		return rep
	}
	m2Total, m2Tail := countEvaluable(m2.Precisions)
	rep.AddRow("2: per-rule samples (independent)", m2Total, m2Tail, m2.CrowdQuestions)

	// Method 2 with overlap sharing.
	cr2 := crowd.New(crowd.Config{Seed: opts.Seed + 72})
	m2s, err := evaluate.PerRule(rules, corpus, cr2, randx.New(opts.Seed+73), opts.SamplePerRule, true)
	if err != nil {
		rep.Findingf("method 2 (shared) failed: %v", err)
		return rep
	}
	m2sTotal, m2sTail := countEvaluable(m2s.Precisions)
	rep.AddRow("2: per-rule samples (overlap-shared [18])", m2sTotal, m2sTail, m2s.CrowdQuestions)

	// Method 3.
	cr3 := crowd.New(crowd.Config{Seed: opts.Seed + 74})
	m3, err := evaluate.Module(rules, corpus, cr3, randx.New(opts.Seed+75), 150)
	if err != nil {
		rep.Findingf("method 3 failed: %v", err)
		return rep
	}
	rep.AddRow("3: module-level sample", 0, 0, m3.CrowdQuestions)

	saving := 0.0
	if m2.CrowdQuestions > 0 {
		saving = 1 - float64(m2s.CrowdQuestions)/float64(m2.CrowdQuestions)
	}
	rep.Findingf("%d head rules / %d tail rules at the 25-touch threshold", len(head), len(tail))
	rep.Findingf("method 1 evaluates %d of %d tail rules — the §4 blind spot", m1Tail, len(tail))
	rep.Findingf("overlap sharing reuses %d verdicts and cuts crowd questions by %.0f%%", m2s.Reused, 100*saving)
	rep.Findingf("module estimate %.3f from only %d questions, but yields no per-rule signal", m3.Precision, m3.CrowdQuestions)

	// Impact tracking (§5.3 strategy).
	tracker := evaluate.NewImpactTracker(50)
	di := core.NewDataIndex(corpus)
	for _, r := range head {
		tracker.MarkEvaluated(r.ID)
	}
	for _, r := range rules {
		tracker.Observe(r.ID, di.Coverage(r))
	}
	alerts := tracker.Alerts()
	rep.Findingf("impact tracker: %d un-evaluated rules crossed the 50-touch threshold and were alerted for evaluation", len(alerts))

	rep.ShapeOK = m1Tail < len(tail) &&
		m2s.CrowdQuestions < m2.CrowdQuestions &&
		m3.CrowdQuestions < m2s.CrowdQuestions &&
		m2Total >= m1Total && m2sTotal == m2Total
	return rep
}
