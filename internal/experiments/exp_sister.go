package experiments

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/em"
	"repro/internal/ie"
	"repro/internal/kb"
	"repro/internal/randx"
)

// SisterOptions scales E7/E8/E9.
type SisterOptions struct {
	Seed      uint64
	NumTypes  int // default 120
	TrainSize int // default 8000
	TestSize  int // default 3000
}

func (o SisterOptions) withDefaults() SisterOptions {
	if o.NumTypes == 0 {
		o.NumTypes = 120
	}
	if o.TrainSize == 0 {
		o.TrainSize = 8000
	}
	if o.TestSize == 0 {
		o.TestSize = 3000
	}
	return o
}

// E7 reproduces the §6 IE claims: dictionary + context + pattern +
// normalization rules extract brands/weights/sizes with high precision, and
// the rule-based extractor beats the learned baseline on precision (the [8]
// industry preference).
func E7(opts SisterOptions) *Report {
	opts = opts.withDefaults()
	rep := &Report{
		ID:    "E7",
		Title: "Rule-based information extraction vs learned baseline",
		PaperClaim: "WalmartLabs IE systems use dictionary rules with context patterns for " +
			"brands, regex rules for weights/sizes/colors, and normalization rules; 67% of " +
			"41 surveyed commercial IE systems are rule-only [8] (survey — not benchmarked).",
		Headers: []string{"extractor", "attribute", "precision", "recall"},
		Notes: fmt.Sprintf("%d train / %d test items; learned baseline = averaged-perceptron token tagger",
			opts.TrainSize, opts.TestSize),
	}
	cat := catalog.New(catalog.Config{Seed: opts.Seed + 81, NumTypes: opts.NumTypes})
	train := cat.GenerateBatch(catalog.BatchSpec{Size: opts.TrainSize, Epoch: 0})
	test := cat.GenerateBatch(catalog.BatchSpec{Size: opts.TestSize, Epoch: 0})

	// Brand dictionary from the taxonomy.
	brandSet := map[string]bool{}
	for _, ty := range cat.Types() {
		for _, b := range ty.Brands {
			brandSet[b] = true
		}
	}
	brands := make([]string, 0, len(brandSet))
	for b := range brandSet {
		brands = append(brands, b)
	}
	dict := &ie.Extractor{Rules: ie.NewRuleset(ie.NewDictRule("dict-brand", "Brand Name", brands, 1))}
	dp, dr := ie.EvaluateExtractor(dict.Extract, test, "Brand Name")
	rep.AddRow("dictionary rule", "Brand Name", dp, dr)

	tagger := ie.NewTokenTagger("Brand Name", 4)
	tagger.Train(train)
	lp, lr := ie.EvaluateExtractor(func(it *catalog.Item) []ie.Extraction {
		return tagger.Extract(it.TitleTokens())
	}, test, "Brand Name")
	rep.AddRow("learned tagger (baseline)", "Brand Name", lp, lr)

	// Unit-pattern rules measured against titles that visibly carry units.
	sizeRule := &ie.UnitRule{RuleID: "unit-size", Attr: "Size", Units: map[string]string{
		"in": "inch", "inch": "inch", "ft": "ft", "oz": "oz", "lb": "lb", "qt": "qt", "ml": "ml",
	}}
	rs := ie.NewRuleset(sizeRule)
	unitTitles, unitHits := 0, 0
	for _, it := range test {
		es := rs.Extract(it.Title())
		if hasUnitToken(it) {
			unitTitles++
			if len(es) > 0 {
				unitHits++
			}
		} else if len(es) > 0 {
			// extraction on a unit-less title would be a false positive
			unitTitles++
		}
	}
	unitRecall := 0.0
	if unitTitles > 0 {
		unitRecall = float64(unitHits) / float64(unitTitles)
	}
	rep.AddRow("unit-pattern rule", "Size/Weight", unitRecall, unitRecall)

	// Normalization.
	norm := ie.NewNormalizer("norm", map[string][]string{
		"IBM Corporation": {"ibm", "ibm inc", "the big blue"},
	})
	es := norm.Normalize([]ie.Extraction{{Attr: "Brand Name", Value: "the big blue"}})
	rep.Findingf("normalization: %q → %q (the §6 example)", "the big blue", es[0].Value)
	rep.Findingf("the [8] survey figure (67%% of commercial IE systems rule-only) is literature, noted not benchmarked")

	rep.ShapeOK = dp >= lp && dp >= 0.9 && unitRecall > 0.7
	return rep
}

func hasUnitToken(it *catalog.Item) bool {
	toks := it.TitleTokens()
	units := map[string]bool{"in": true, "inch": true, "ft": true, "oz": true, "lb": true, "qt": true, "ml": true}
	for i, t := range toks {
		if units[t] && i > 0 {
			return true
		}
		if n, u, ok := splitFusedToken(t); ok && n != "" && units[u] {
			return true
		}
	}
	return false
}

func splitFusedToken(s string) (num, unit string, ok bool) {
	i := 0
	for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.') {
		i++
	}
	if i == 0 || i == len(s) {
		return "", "", false
	}
	return s[:i], s[i:], true
}

// E8 reproduces the §6 EM claims: rule sets in the paper's very notation
// (isbn equality + 3-gram title Jaccard, etc.) match product pairs with
// high precision; blocking avoids the cross product; the rule-set verdict
// is independent of rule order (the §5.3 semantics question).
func E8(opts SisterOptions) *Report {
	opts = opts.withDefaults()
	rep := &Report{
		ID:    "E8",
		Title: "Entity matching with rules",
		PaperClaim: "Product-matching systems at WalmartLabs use rules like " +
			"[a.isbn = b.isbn] ∧ [jaccard.3g(a.title,b.title) ≥ 0.8] ⇒ a ≈ b, written by " +
			"analysts, developers and the crowd [18] (§6).",
		Headers: []string{"metric", "value"},
		Notes:   "pairs = vendor-perturbed duplicates (positives) + same-type and cross-type non-matches",
	}
	cat := catalog.New(catalog.Config{Seed: opts.Seed + 82, NumTypes: opts.NumTypes})
	pairs := em.GeneratePairs(cat, randx.New(opts.Seed+83), 600, 600)

	rs := &em.RuleSet{Rules: []*em.Rule{
		em.NewRule("isbn-title", em.AttrEquals("isbn"), em.QGramJaccard("Title", 3, 0.5)),
		em.NewRule("title-brand", em.TokenJaccard("Title", 0.6), em.AttrEquals("Brand Name")),
		em.NewRule("title-high", em.QGramJaccard("Title", 3, 0.8)),
	}}
	m := em.Evaluate(rs, pairs)
	rep.AddRow("precision", m.Precision)
	rep.AddRow("recall", m.Recall)
	rep.AddRow("F1", m.F1)
	for _, id := range sortedKeys(m.PerRule) {
		rep.AddRow("matches via "+id, m.PerRule[id])
	}

	// Order independence.
	rev := &em.RuleSet{Rules: []*em.Rule{rs.Rules[2], rs.Rules[0], rs.Rules[1]}}
	orderOK := true
	for _, p := range pairs {
		a, _ := rs.Apply(p.A, p.B)
		b, _ := rev.Apply(p.A, p.B)
		if a != b {
			orderOK = false
			break
		}
	}
	rep.Findingf("rule-order independence over %d pairs: %v (disjunction-of-conjunctions semantics)", len(pairs), orderOK)

	// Blocking.
	items := cat.GenerateBatch(catalog.BatchSpec{Size: 3000, Epoch: 0})
	blocker := em.NewBlocker(items)
	probe := items[:200]
	total := 0
	for _, it := range probe {
		total += len(blocker.Candidates(it, 2))
	}
	avg := float64(total) / float64(len(probe))
	reduction := float64(len(items)) / avg
	rep.Findingf("blocking: %.0f candidates/record vs %d full scan (%.0fx reduction)", avg, len(items), reduction)

	rep.ShapeOK = m.Precision >= 0.9 && m.Recall >= 0.5 && orderOK && reduction > 4
	return rep
}

// E9 reproduces the §6 KB-construction claims: analyst curation captured as
// rules survives source rebuilds — "over a period of 3-4 years, analysts
// have written several thousands of such rules".
func E9(opts SisterOptions) *Report {
	opts = opts.withDefaults()
	rep := &Report{
		ID:    "E9",
		Title: "KB construction with replayable curation rules",
		PaperClaim: "Kosmix KB curation actions are captured as rules and re-applied after " +
			"every pipeline refresh; several thousands of curation rules accumulated (§6, [27]).",
		Headers: []string{"rebuild epoch", "entities", "rules applied", "no-ops", "invariants hold"},
		Notes:   "synthetic encyclopedia snapshots with churn (new entities, spurious edges, upstream renames)",
	}

	log := &kb.CurationLog{}
	// The curated fixes of the churn motifs…
	log.Append(kb.CurationRule{Op: "remove-edge", Child: "politicians", Parent: "entertainment", Author: "ana"})
	log.Append(kb.CurationRule{Op: "add-alias", Entity: "lionel messi", Alias: "la pulga", Author: "ana"})
	log.Append(kb.CurationRule{Op: "blacklist-entity", Entity: "initech", Author: "ana"})
	log.Append(kb.CurationRule{Op: "rename-entity", From: "globex", To: "globex worldwide", Author: "ana"})
	// …plus bulk curation at the paper's "thousands of rules" scale.
	for i := 0; i < 2000; i++ {
		log.Append(kb.CurationRule{Op: "add-alias", Entity: "world cup", Alias: fmt.Sprintf("wc%04d", i), Author: "bulk"})
	}

	allOK := true
	var replayTime time.Duration
	for epoch := 0; epoch <= 3; epoch++ {
		base := kb.Build(kb.SyntheticSource(opts.Seed+84, epoch))
		start := time.Now()
		r := log.Replay(base)
		replayTime += time.Since(start)
		_, entities, _ := base.Stats()
		invariants := !base.HasCycle() &&
			base.Entity("initech") == nil &&
			len(base.Parents("politicians")) == 1 &&
			base.ResolveAlias("la pulga") == "lionel messi"
		if len(r.Errors) > 0 || !invariants {
			allOK = false
		}
		rep.AddRow(epoch, entities, r.Applied, r.NoOps, invariants)
	}
	rep.Findingf("replaying %d curation rules over 4 rebuilds took %v total", len(log.Rules), replayTime.Round(time.Millisecond))
	rep.ShapeOK = allOK
	return rep
}
