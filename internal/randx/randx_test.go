package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestZeroSeedNotAbsorbing(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced the absorbing zero state")
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split("catalog")
	b := root.Split("crowd")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestSplitStable(t *testing.T) {
	a := New(7).Split("x").Uint64()
	b := New(7).Split("x").Uint64()
	if a != b {
		t.Fatal("Split is not stable for identical labels")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(2)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(3)
	var s float64
	const n = 100000
	for i := 0; i < n; i++ {
		s += r.Float64()
	}
	if m := s / n; math.Abs(m-0.5) > 0.01 {
		t.Fatalf("uniform mean far from 0.5: %v", m)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(4)
	const n = 100000
	var s, ss float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		s += v
		ss += v * v
	}
	mean := s / n
	variance := ss/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean far from 0: %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance far from 1: %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	p := r.Perm(50)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatalf("permutation missing elements: %d", len(seen))
	}
}

func TestSampleDistinctSorted(t *testing.T) {
	r := New(6)
	s := r.Sample(100, 10)
	if len(s) != 10 {
		t.Fatalf("want 10 samples, got %d", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("sample not strictly increasing at %d: %v", i, s)
		}
	}
}

func TestSampleAllWhenKLarge(t *testing.T) {
	s := New(6).Sample(5, 10)
	if len(s) != 5 {
		t.Fatalf("want all 5, got %d", len(s))
	}
}

func TestSampleUniformity(t *testing.T) {
	r := New(8)
	counts := make([]int, 10)
	for trial := 0; trial < 20000; trial++ {
		for _, idx := range r.Sample(10, 3) {
			counts[idx]++
		}
	}
	// Each index should be selected ~6000 times (3/10 of 20000).
	for i, c := range counts {
		if c < 5400 || c > 6600 {
			t.Fatalf("index %d selected %d times, expected ~6000", i, c)
		}
	}
}

func TestWeightedIndex(t *testing.T) {
	r := New(9)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.WeightedIndex(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weighted ratio %v, want ~3", ratio)
	}
}

func TestWeightedIndexZeroMassFallsBackToUniform(t *testing.T) {
	r := New(10)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[r.WeightedIndex([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("uniform fallback never drew index %d", i)
		}
	}
}

func TestZipfHeadHeavy(t *testing.T) {
	r := New(11)
	z := NewZipf(r, 100, 1.1)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50]*5 {
		t.Fatalf("Zipf not head-heavy: head=%d mid=%d", counts[0], counts[50])
	}
}

func TestZipfMassSumsToOne(t *testing.T) {
	z := NewZipf(New(12), 50, 1.0)
	var total float64
	for k := 0; k < 50; k++ {
		total += z.Mass(k)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("Zipf masses sum to %v", total)
	}
	if z.Mass(-1) != 0 || z.Mass(50) != 0 {
		t.Fatal("out-of-range mass should be 0")
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v, want 5", m)
	}
	if s := Stddev(xs); math.Abs(s-2.138) > 0.01 {
		t.Fatalf("stddev = %v, want ~2.138", s)
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestBootstrapCI(t *testing.T) {
	r := New(13)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + r.NormFloat64()
	}
	lo, hi := BootstrapCI(New(14), xs, 0.95, 500)
	if lo >= hi {
		t.Fatalf("degenerate CI [%v, %v]", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Fatalf("CI [%v, %v] excludes true mean 10", lo, hi)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	lo, hi := BootstrapCI(New(1), nil, 0.95, 100)
	if lo != 0 || hi != 0 {
		t.Fatal("empty input should yield (0,0)")
	}
	lo, hi = BootstrapCI(New(1), []float64{3}, 0.95, 100)
	if lo != 3 || hi != 3 {
		t.Fatal("single observation should yield (x,x)")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(92, 100)
	if lo < 0.84 || lo > 0.93 || hi < 0.92 || hi > 0.97 {
		t.Fatalf("Wilson(92/100) = [%v, %v], outside expected bounds", lo, hi)
	}
	lo, hi = WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatal("Wilson with n=0 should be [0,1]")
	}
	lo, hi = WilsonInterval(5, 5)
	if hi > 1 || lo < 0.5 {
		t.Fatalf("Wilson(5/5) = [%v, %v]", lo, hi)
	}
}

func TestWilsonBoundsProperty(t *testing.T) {
	f := func(succ, n uint8) bool {
		s, m := int(succ), int(n)
		if m == 0 {
			return true
		}
		s = s % (m + 1)
		lo, hi := WilsonInterval(s, m)
		p := float64(s) / float64(m)
		return lo >= 0 && hi <= 1 && lo <= p+1e-9 && hi >= p-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleCoverage(t *testing.T) {
	r := New(15)
	s := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
		seen[s[0]+s[1]+s[2]] = true
	}
	if len(seen) != 6 {
		t.Fatalf("shuffle reached %d of 6 permutations", len(seen))
	}
}

func TestPickString(t *testing.T) {
	r := New(16)
	opts := []string{"x", "y"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[r.PickString(opts)] = true
	}
	if !seen["x"] || !seen["y"] {
		t.Fatal("PickString never returned one of the options")
	}
}
