// Package randx provides deterministic, splittable pseudo-random number
// generation and small statistical helpers used throughout the repro
// workloads.
//
// Every experiment in this repository must be reproducible bit-for-bit, so
// nothing in the library ever consults the wall clock or the global
// math/rand source. Instead each component derives its own generator from a
// seed via Split, which hashes a label into an independent stream. Two runs
// with the same top-level seed therefore produce identical catalogs, crowds,
// and samples regardless of goroutine scheduling.
package randx

import (
	"hash/fnv"
	"math"
	"sort"
)

// Rand is a small, fast 64-bit PRNG (xorshift* family, splitmix64 seeded).
// It intentionally mirrors the subset of math/rand's API the repository
// needs, while adding Split for derived deterministic streams.
type Rand struct {
	state uint64
}

// New returns a generator seeded from seed. A zero seed is remapped so the
// xorshift state never becomes the absorbing zero state.
func New(seed uint64) *Rand {
	r := &Rand{state: splitmix(seed)}
	if r.state == 0 {
		r.state = 0x9E3779B97F4A7C15
	}
	return r
}

func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Split derives an independent generator identified by label. Splitting is
// stable: the same receiver seed and label always produce the same stream,
// and streams for distinct labels are statistically independent.
func (r *Rand) Split(label string) *Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return New(splitmix(r.state) ^ h.Sum64())
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal variate (Box-Muller transform).
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher-Yates).
func (r *Rand) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap callback.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// PickString returns a uniformly chosen element of s. It panics on an empty
// slice, which always indicates a workload-construction bug.
func (r *Rand) PickString(s []string) string {
	if len(s) == 0 {
		panic("randx: PickString on empty slice")
	}
	return s[r.Intn(len(s))]
}

// Sample returns k distinct indices drawn uniformly from [0, n) using
// reservoir sampling. If k >= n it returns all n indices. The result is
// sorted for deterministic downstream iteration.
func (r *Rand) Sample(n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	res := make([]int, k)
	for i := 0; i < k; i++ {
		res[i] = i
	}
	for i := k; i < n; i++ {
		j := r.Intn(i + 1)
		if j < k {
			res[j] = i
		}
	}
	sort.Ints(res)
	return res
}

// WeightedIndex draws an index proportionally to weights. Non-positive
// weights are treated as zero. If the total mass is zero it falls back to a
// uniform draw.
func (r *Rand) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	target := r.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf draws integers in [0, n) with P(k) proportional to 1/(k+1)^s.
// It is used to model head/tail product-type popularity: a handful of types
// receive most items while a long tail receives only a few ("tail rules"
// in the paper's terminology touch only those).
type Zipf struct {
	r   *Rand
	cdf []float64
}

// NewZipf precomputes the CDF for n outcomes with exponent s > 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("randx: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	var total float64
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), s)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	return &Zipf{r: r, cdf: cdf}
}

// Next draws the next Zipf-distributed value.
func (z *Zipf) Next() int { return z.NextWith(z.r) }

// NextWith draws a Zipf-distributed value using uniform bits from r instead
// of the generator bound at construction. This lets many independent streams
// share one precomputed CDF.
func (z *Zipf) NextWith(r *Rand) int {
	u := r.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Mass returns the probability of outcome k.
func (z *Zipf) Mass(k int) float64 {
	if k < 0 || k >= len(z.cdf) {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}
