package randx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two observations are available.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BootstrapCI estimates a two-sided confidence interval for the mean of xs
// by bootstrap resampling. level is the coverage (e.g. 0.95); iters bootstrap
// replicates are drawn using r. It returns (lo, hi); for degenerate input it
// returns the mean twice.
func BootstrapCI(r *Rand, xs []float64, level float64, iters int) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	if len(xs) == 1 || iters <= 0 {
		return xs[0], xs[0]
	}
	means := make([]float64, iters)
	for i := 0; i < iters; i++ {
		var s float64
		for j := 0; j < len(xs); j++ {
			s += xs[r.Intn(len(xs))]
		}
		means[i] = s / float64(len(xs))
	}
	alpha := (1 - level) / 2 * 100
	return Percentile(means, alpha), Percentile(means, 100-alpha)
}

// WilsonInterval returns the Wilson score interval for a binomial proportion
// with successes out of n trials at ~95% confidence (z = 1.96). It is the
// estimator the evaluation package uses to report rule precision from crowd
// samples: unlike the naive ratio it behaves sensibly for the tiny samples
// "tail" rules produce.
func WilsonInterval(successes, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(successes) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	margin := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / denom
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
