package crowd

import (
	"errors"
	"testing"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/randx"
)

func testItems(t *testing.T, n int) []*catalog.Item {
	t.Helper()
	c := catalog.New(catalog.Config{Seed: 11, NumTypes: 60})
	return c.GenerateBatch(catalog.BatchSpec{Size: n, Epoch: 0})
}

func TestVerifyPairMostlyCorrect(t *testing.T) {
	items := testItems(t, 400)
	c := New(Config{Seed: 1})
	agree := 0
	for _, it := range items {
		ok, err := c.VerifyPair(it, it.TrueType)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			agree++
		}
	}
	// Majority-of-3 with ~0.9 workers should be right ~97% of the time.
	if agree < 370 {
		t.Fatalf("crowd agreed only %d/400 times on true pairs", agree)
	}
}

func TestVerifyPairRejectsWrong(t *testing.T) {
	items := testItems(t, 400)
	c := New(Config{Seed: 2})
	reject := 0
	for _, it := range items {
		ok, err := c.VerifyPair(it, "definitely-wrong-type")
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			reject++
		}
	}
	if reject < 370 {
		t.Fatalf("crowd rejected only %d/400 wrong pairs", reject)
	}
}

func TestCrowdIsImperfect(t *testing.T) {
	items := testItems(t, 2000)
	c := New(Config{Seed: 3, MeanAccuracy: Float(0.75), AccuracySpread: Float(0.05)})
	wrong := 0
	for _, it := range items {
		ok, _ := c.VerifyPair(it, it.TrueType)
		if !ok {
			wrong++
		}
	}
	if wrong == 0 {
		t.Fatal("a 0.75-accuracy crowd should sometimes reach a wrong majority")
	}
}

func TestBudgetAccounting(t *testing.T) {
	items := testItems(t, 10)
	c := New(Config{Seed: 4, Redundancy: 3, Budget: 9})
	for i := 0; i < 3; i++ {
		if _, err := c.VerifyPair(items[i], items[i].TrueType); err != nil {
			t.Fatalf("question %d should fit budget: %v", i, err)
		}
	}
	if c.Spent() != 9 || c.Asked() != 3 || c.Remaining() != 0 {
		t.Fatalf("ledger wrong: spent=%d asked=%d remaining=%d", c.Spent(), c.Asked(), c.Remaining())
	}
	if _, err := c.VerifyPair(items[3], items[3].TrueType); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
}

func TestUnlimitedBudget(t *testing.T) {
	c := New(Config{Seed: 5})
	if c.Remaining() != -1 {
		t.Fatalf("unlimited budget should report -1, got %d", c.Remaining())
	}
}

func TestVerifyClaim(t *testing.T) {
	c := New(Config{Seed: 6})
	agreeTrue, agreeFalse := 0, 0
	for i := 0; i < 300; i++ {
		if ok, _ := c.VerifyClaim(true); ok {
			agreeTrue++
		}
		if ok, _ := c.VerifyClaim(false); !ok {
			agreeFalse++
		}
	}
	if agreeTrue < 280 || agreeFalse < 280 {
		t.Fatalf("claim verification unreliable: %d/%d", agreeTrue, agreeFalse)
	}
}

func TestLabelItem(t *testing.T) {
	items := testItems(t, 300)
	c := New(Config{Seed: 7, Redundancy: 5})
	types := []string{"rings", "jeans", "books", "motor oil"}
	correct := 0
	for _, it := range items {
		lbl, err := c.LabelItem(it, types)
		if err != nil {
			t.Fatal(err)
		}
		if lbl == it.TrueType {
			correct++
		}
	}
	if correct < 260 {
		t.Fatalf("plurality labeling too weak: %d/300", correct)
	}
}

func TestLabelItemNoTypes(t *testing.T) {
	items := testItems(t, 1)
	c := New(Config{Seed: 8})
	if _, err := c.LabelItem(items[0], nil); err == nil {
		t.Fatal("expected error for empty type list")
	}
}

func TestSamplePrecision(t *testing.T) {
	items := testItems(t, 500)
	preds := make([]string, len(items))
	// 80% correct predictions.
	for i, it := range items {
		if i%5 == 0 {
			preds[i] = "wrong-type"
		} else {
			preds[i] = it.TrueType
		}
	}
	c := New(Config{Seed: 9})
	p, n, err := c.SamplePrecision(randx.New(10), items, preds, 200)
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("sample size %d, want 200", n)
	}
	if p < 0.7 || p > 0.9 {
		t.Fatalf("estimated precision %v, want ~0.8", p)
	}
}

func TestSamplePrecisionEmpty(t *testing.T) {
	c := New(Config{Seed: 10})
	p, n, err := c.SamplePrecision(randx.New(1), nil, nil, 50)
	if err != nil || p != 1 || n != 0 {
		t.Fatalf("empty result set should be vacuously precise: %v %v %v", p, n, err)
	}
}

func TestSamplePrecisionMismatch(t *testing.T) {
	items := testItems(t, 2)
	c := New(Config{Seed: 11})
	if _, _, err := c.SamplePrecision(randx.New(1), items, []string{"x"}, 5); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestAnalystVerifyAndActions(t *testing.T) {
	a := NewAnalyst("ana", 1, 0)
	right := 0
	for i := 0; i < 500; i++ {
		if a.Verify(true) {
			right++
		}
	}
	if right < 470 {
		t.Fatalf("analyst accuracy too low: %d/500", right)
	}
	if a.Actions() != 500 {
		t.Fatalf("actions = %d, want 500", a.Actions())
	}
}

func TestAnalystLabel(t *testing.T) {
	items := testItems(t, 200)
	a := NewAnalyst("ana", 2, 0.97)
	correct := 0
	for _, it := range items {
		if a.Label(it, []string{"rings", "jeans"}) == it.TrueType {
			correct++
		}
	}
	if correct < 180 {
		t.Fatalf("analyst labeling too weak: %d/200", correct)
	}
}

// TestAdversarialZeroAccuracyCrowd: the pointer-typed config makes an
// explicit zero distinguishable from "unset" — a MeanAccuracy=0, Spread=0
// crowd must answer every true claim wrong, not be silently promoted to the
// 0.9 default (the old float64-zero sentinel bug).
func TestAdversarialZeroAccuracyCrowd(t *testing.T) {
	c := New(Config{Seed: 13, MeanAccuracy: Float(0), AccuracySpread: Float(0)})
	for i := 0; i < 50; i++ {
		ok, err := c.VerifyClaim(true)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("a zero-accuracy crowd verified a true claim")
		}
	}
}

// TestZeroSpreadCrowd: Float(0) spread pins every worker to exactly the mean
// (here 1.0 after clamping to 0.999 — all must agree on truth).
func TestZeroSpreadCrowd(t *testing.T) {
	c := New(Config{Seed: 14, MeanAccuracy: Float(0.999), AccuracySpread: Float(0)})
	for i := 0; i < 50; i++ {
		if ok, _ := c.VerifyClaim(true); !ok {
			t.Fatal("a 0.999-accuracy zero-spread crowd reached a wrong majority")
		}
	}
}

// TestCrowdNoShowsAndTimeouts: with injected no-shows and timeouts, charges
// reflect only assignments that were picked up, and a fully silenced
// question fails with ErrNoAnswers instead of fabricating a majority.
func TestCrowdNoShowsAndTimeouts(t *testing.T) {
	// Every assignment times out: charged in full, but no answers.
	inj := faultinject.New(faultinject.Config{Seed: 1, CrowdTimeoutP: 1})
	c := New(Config{Seed: 15, Faults: inj})
	if _, err := c.VerifyClaim(true); !errors.Is(err, ErrNoAnswers) {
		t.Fatalf("all-timeout question: want ErrNoAnswers, got %v", err)
	}
	if c.Spent() != 3 {
		t.Fatalf("timeouts must still charge: spent=%d, want 3", c.Spent())
	}

	// Every assignment is a no-show: no answers and no charge.
	inj = faultinject.New(faultinject.Config{Seed: 2, CrowdNoShowP: 1})
	c = New(Config{Seed: 16, Faults: inj})
	if _, err := c.VerifyClaim(true); !errors.Is(err, ErrNoAnswers) {
		t.Fatalf("all-no-show question: want ErrNoAnswers, got %v", err)
	}
	if c.Spent() != 0 {
		t.Fatalf("no-shows must not charge: spent=%d, want 0", c.Spent())
	}
	if n := inj.Counts()["crowd_noshow"]; n != 3 {
		t.Fatalf("injector counted %d no-shows, want 3", n)
	}

	// Partial faults: majorities still form over the answering workers.
	inj = faultinject.New(faultinject.Config{Seed: 3, CrowdNoShowP: 0.3, CrowdTimeoutP: 0.3})
	c = New(Config{Seed: 17, Redundancy: 5})
	c.cfg.Faults = inj
	agree, failed := 0, 0
	for i := 0; i < 200; i++ {
		ok, err := c.VerifyClaim(true)
		switch {
		case errors.Is(err, ErrNoAnswers):
			failed++
		case err != nil:
			t.Fatal(err)
		case ok:
			agree++
		}
	}
	if agree < 150 {
		t.Fatalf("faulty crowd agreed only %d/200 on true claims", agree)
	}
	if inj.Total() == 0 {
		t.Fatal("partial fault config injected nothing")
	}
	_ = failed // any count is legal; the point is no fabricated majorities
}

func TestCrowdDeterminism(t *testing.T) {
	items := testItems(t, 50)
	run := func() []bool {
		c := New(Config{Seed: 42})
		out := make([]bool, len(items))
		for i, it := range items {
			out[i], _ = c.VerifyPair(it, it.TrueType)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("crowd answers are not deterministic")
		}
	}
}
