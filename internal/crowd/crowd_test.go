package crowd

import (
	"errors"
	"testing"

	"repro/internal/catalog"
	"repro/internal/randx"
)

func testItems(t *testing.T, n int) []*catalog.Item {
	t.Helper()
	c := catalog.New(catalog.Config{Seed: 11, NumTypes: 60})
	return c.GenerateBatch(catalog.BatchSpec{Size: n, Epoch: 0})
}

func TestVerifyPairMostlyCorrect(t *testing.T) {
	items := testItems(t, 400)
	c := New(Config{Seed: 1})
	agree := 0
	for _, it := range items {
		ok, err := c.VerifyPair(it, it.TrueType)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			agree++
		}
	}
	// Majority-of-3 with ~0.9 workers should be right ~97% of the time.
	if agree < 370 {
		t.Fatalf("crowd agreed only %d/400 times on true pairs", agree)
	}
}

func TestVerifyPairRejectsWrong(t *testing.T) {
	items := testItems(t, 400)
	c := New(Config{Seed: 2})
	reject := 0
	for _, it := range items {
		ok, err := c.VerifyPair(it, "definitely-wrong-type")
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			reject++
		}
	}
	if reject < 370 {
		t.Fatalf("crowd rejected only %d/400 wrong pairs", reject)
	}
}

func TestCrowdIsImperfect(t *testing.T) {
	items := testItems(t, 2000)
	c := New(Config{Seed: 3, MeanAccuracy: 0.75, AccuracySpread: 0.05})
	wrong := 0
	for _, it := range items {
		ok, _ := c.VerifyPair(it, it.TrueType)
		if !ok {
			wrong++
		}
	}
	if wrong == 0 {
		t.Fatal("a 0.75-accuracy crowd should sometimes reach a wrong majority")
	}
}

func TestBudgetAccounting(t *testing.T) {
	items := testItems(t, 10)
	c := New(Config{Seed: 4, Redundancy: 3, Budget: 9})
	for i := 0; i < 3; i++ {
		if _, err := c.VerifyPair(items[i], items[i].TrueType); err != nil {
			t.Fatalf("question %d should fit budget: %v", i, err)
		}
	}
	if c.Spent() != 9 || c.Asked() != 3 || c.Remaining() != 0 {
		t.Fatalf("ledger wrong: spent=%d asked=%d remaining=%d", c.Spent(), c.Asked(), c.Remaining())
	}
	if _, err := c.VerifyPair(items[3], items[3].TrueType); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
}

func TestUnlimitedBudget(t *testing.T) {
	c := New(Config{Seed: 5})
	if c.Remaining() != -1 {
		t.Fatalf("unlimited budget should report -1, got %d", c.Remaining())
	}
}

func TestVerifyClaim(t *testing.T) {
	c := New(Config{Seed: 6})
	agreeTrue, agreeFalse := 0, 0
	for i := 0; i < 300; i++ {
		if ok, _ := c.VerifyClaim(true); ok {
			agreeTrue++
		}
		if ok, _ := c.VerifyClaim(false); !ok {
			agreeFalse++
		}
	}
	if agreeTrue < 280 || agreeFalse < 280 {
		t.Fatalf("claim verification unreliable: %d/%d", agreeTrue, agreeFalse)
	}
}

func TestLabelItem(t *testing.T) {
	items := testItems(t, 300)
	c := New(Config{Seed: 7, Redundancy: 5})
	types := []string{"rings", "jeans", "books", "motor oil"}
	correct := 0
	for _, it := range items {
		lbl, err := c.LabelItem(it, types)
		if err != nil {
			t.Fatal(err)
		}
		if lbl == it.TrueType {
			correct++
		}
	}
	if correct < 260 {
		t.Fatalf("plurality labeling too weak: %d/300", correct)
	}
}

func TestLabelItemNoTypes(t *testing.T) {
	items := testItems(t, 1)
	c := New(Config{Seed: 8})
	if _, err := c.LabelItem(items[0], nil); err == nil {
		t.Fatal("expected error for empty type list")
	}
}

func TestSamplePrecision(t *testing.T) {
	items := testItems(t, 500)
	preds := make([]string, len(items))
	// 80% correct predictions.
	for i, it := range items {
		if i%5 == 0 {
			preds[i] = "wrong-type"
		} else {
			preds[i] = it.TrueType
		}
	}
	c := New(Config{Seed: 9})
	p, n, err := c.SamplePrecision(randx.New(10), items, preds, 200)
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("sample size %d, want 200", n)
	}
	if p < 0.7 || p > 0.9 {
		t.Fatalf("estimated precision %v, want ~0.8", p)
	}
}

func TestSamplePrecisionEmpty(t *testing.T) {
	c := New(Config{Seed: 10})
	p, n, err := c.SamplePrecision(randx.New(1), nil, nil, 50)
	if err != nil || p != 1 || n != 0 {
		t.Fatalf("empty result set should be vacuously precise: %v %v %v", p, n, err)
	}
}

func TestSamplePrecisionMismatch(t *testing.T) {
	items := testItems(t, 2)
	c := New(Config{Seed: 11})
	if _, _, err := c.SamplePrecision(randx.New(1), items, []string{"x"}, 5); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestAnalystVerifyAndActions(t *testing.T) {
	a := NewAnalyst("ana", 1, 0)
	right := 0
	for i := 0; i < 500; i++ {
		if a.Verify(true) {
			right++
		}
	}
	if right < 470 {
		t.Fatalf("analyst accuracy too low: %d/500", right)
	}
	if a.Actions() != 500 {
		t.Fatalf("actions = %d, want 500", a.Actions())
	}
}

func TestAnalystLabel(t *testing.T) {
	items := testItems(t, 200)
	a := NewAnalyst("ana", 2, 0.97)
	correct := 0
	for _, it := range items {
		if a.Label(it, []string{"rings", "jeans"}) == it.TrueType {
			correct++
		}
	}
	if correct < 180 {
		t.Fatalf("analyst labeling too weak: %d/200", correct)
	}
}

func TestCrowdDeterminism(t *testing.T) {
	items := testItems(t, 50)
	run := func() []bool {
		c := New(Config{Seed: 42})
		out := make([]bool, len(items))
		for i, it := range items {
			out[i], _ = c.VerifyPair(it, it.TrueType)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("crowd answers are not deterministic")
		}
	}
}
