// Package crowd simulates the human layer of the paper's systems: crowd
// workers who verify 〈item, predicted type〉 pairs (§3.3's evaluation stage),
// and domain analysts who verify rules, label items and answer the §5.1
// tool's accept/reject questions.
//
// Workers are Bernoulli oracles over the catalog's ground truth: each worker
// has a skill level (probability of answering a verification question
// correctly), drawn once from a configurable prior. Questions cost budget
// per worker asked, which is what makes the §4 economics reproducible:
// evaluating tens of thousands of rules with per-rule samples "incurs
// prohibitive costs" precisely because each sampled item charges Redundancy
// units.
package crowd

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/randx"
)

// ErrBudgetExhausted is returned once the crowd has no budget left.
var ErrBudgetExhausted = errors.New("crowd: budget exhausted")

// ErrNoAnswers is returned when every worker assigned to a question was a
// no-show or timed out (fault injection): the question has no answer at all,
// which callers must treat as an explicit failure, not a majority "no".
var ErrNoAnswers = errors.New("crowd: no workers answered (timeouts/no-shows)")

// Float returns a pointer to v — the literal-friendly way to set the
// pointer-typed Config fields (Float(0) configures an adversarial
// zero-accuracy or zero-spread crowd, distinct from nil = default).
func Float(v float64) *float64 { return &v }

// Config parameterizes a simulated crowd.
type Config struct {
	Seed       uint64
	NumWorkers int // default 25
	// MeanAccuracy is the mean per-worker probability of a correct answer;
	// AccuracySpread is the half-width of the uniform skill prior around it.
	// Both are pointers so that an explicit zero is expressible (an
	// adversarial always-wrong crowd, or a spread-free uniform one — the
	// corners the fault-injection harness exercises); nil takes the defaults
	// (0.9 and 0.07). Use Float to set them inline.
	MeanAccuracy   *float64
	AccuracySpread *float64
	// Redundancy is how many workers answer each question; the majority
	// wins. Default 3.
	Redundancy int
	// Budget is the total number of worker-answers available; 0 means
	// unlimited.
	Budget int
	// Faults optionally injects worker timeouts (charged, no answer) and
	// no-shows (no charge, no answer) into every question. Nil injects
	// nothing and leaves the answer RNG stream untouched, so seeded runs
	// without faults are byte-identical to before.
	Faults *faultinject.Injector
}

func (c Config) withDefaults() Config {
	if c.NumWorkers == 0 {
		c.NumWorkers = 25
	}
	if c.MeanAccuracy == nil {
		c.MeanAccuracy = Float(0.9)
	}
	if c.AccuracySpread == nil {
		c.AccuracySpread = Float(0.07)
	}
	if c.Redundancy == 0 {
		c.Redundancy = 3
	}
	return c
}

type worker struct {
	accuracy float64
}

// Crowd is a budgeted pool of simulated workers.
type Crowd struct {
	cfg     Config
	workers []worker
	rng     *randx.Rand
	asked   int // questions asked
	spent   int // worker-answers charged
}

// New builds a crowd from cfg.
func New(cfg Config) *Crowd {
	cfg = cfg.withDefaults()
	rng := randx.New(cfg.Seed).Split("crowd")
	ws := make([]worker, cfg.NumWorkers)
	skill := rng.Split("skill")
	for i := range ws {
		acc := *cfg.MeanAccuracy + (skill.Float64()*2-1)**cfg.AccuracySpread
		// Clamp to a valid probability only: an explicitly configured
		// adversarial crowd (accuracy below 0.5, even 0) is a supported
		// corner, not a misconfiguration. The default prior (0.9 ± 0.07)
		// never touches either bound, so default behaviour is unchanged.
		if acc > 0.999 {
			acc = 0.999
		}
		if acc < 0 {
			acc = 0
		}
		ws[i] = worker{accuracy: acc}
	}
	return &Crowd{cfg: cfg, workers: ws, rng: rng.Split("answers")}
}

// Asked returns the number of questions asked so far.
func (c *Crowd) Asked() int { return c.asked }

// Spent returns worker-answer units charged so far.
func (c *Crowd) Spent() int { return c.spent }

// Remaining returns remaining budget, or -1 for unlimited.
func (c *Crowd) Remaining() int {
	if c.cfg.Budget == 0 {
		return -1
	}
	return c.cfg.Budget - c.spent
}

// charge reserves n worker-answers or fails.
func (c *Crowd) charge(n int) error {
	if c.cfg.Budget > 0 && c.spent+n > c.cfg.Budget {
		return fmt.Errorf("%w (spent %d of %d)", ErrBudgetExhausted, c.spent, c.cfg.Budget)
	}
	c.spent += n
	c.asked++
	return nil
}

// answer simulates one worker's yes/no answer given the true answer.
func (c *Crowd) answer(truth bool) bool {
	w := c.workers[c.rng.Intn(len(c.workers))]
	if c.rng.Bool(w.accuracy) {
		return truth
	}
	return !truth
}

// assign simulates handing one question to Redundancy workers under fault
// injection: a no-show is neither charged nor answered, a timeout is charged
// (the assignment cost is sunk) but yields no answer. Without an injector
// every assignment answers and charges, and no fault RNG is drawn — seeded
// fault-free runs are byte-identical to the pre-fault code.
func (c *Crowd) assign() (answered, charged int) {
	if c.cfg.Faults == nil {
		return c.cfg.Redundancy, c.cfg.Redundancy
	}
	for i := 0; i < c.cfg.Redundancy; i++ {
		switch {
		case c.cfg.Faults.CrowdNoShow():
		case c.cfg.Faults.CrowdTimeout():
			charged++
		default:
			answered++
			charged++
		}
	}
	return answered, charged
}

// VerifyPair asks the crowd whether predicted is a correct product type for
// the item (the §3.3 crowdsourced sample evaluation). It returns the
// majority answer over the workers that actually answered (ErrNoAnswers if
// faults silenced all of them).
func (c *Crowd) VerifyPair(it *catalog.Item, predicted string) (bool, error) {
	return c.VerifyClaim(it.TrueType == predicted)
}

// VerifyClaim asks the crowd to verify an arbitrary boolean claim whose
// ground truth the caller supplies (rule-verification tasks, EM pair
// verification). Majority over the workers that answered.
func (c *Crowd) VerifyClaim(truth bool) (bool, error) {
	answered, charged := c.assign()
	if err := c.charge(charged); err != nil {
		return false, err
	}
	if answered == 0 {
		return false, ErrNoAnswers
	}
	yes := 0
	for i := 0; i < answered; i++ {
		if c.answer(truth) {
			yes++
		}
	}
	return yes*2 > answered, nil
}

// LabelItem asks the crowd to label an item with one of types. Each worker
// answers the true type with their accuracy, otherwise a uniformly random
// wrong type; plurality wins, ties broken deterministically by name order.
func (c *Crowd) LabelItem(it *catalog.Item, types []string) (string, error) {
	if len(types) == 0 {
		return "", errors.New("crowd: LabelItem with no candidate types")
	}
	answered, charged := c.assign()
	if err := c.charge(charged); err != nil {
		return "", err
	}
	if answered == 0 {
		return "", ErrNoAnswers
	}
	votes := map[string]int{}
	for i := 0; i < answered; i++ {
		w := c.workers[c.rng.Intn(len(c.workers))]
		if c.rng.Bool(w.accuracy) {
			votes[it.TrueType]++
		} else {
			votes[types[c.rng.Intn(len(types))]]++
		}
	}
	best, bestN := "", -1
	names := make([]string, 0, len(votes))
	for name := range votes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if votes[name] > bestN {
			best, bestN = name, votes[name]
		}
	}
	return best, nil
}

// SamplePrecision estimates the precision of a set of 〈item, prediction〉
// pairs by asking the crowd to verify a sample of size up to n. It returns
// the estimated precision and the verified sample size. This is the paper's
// "take one or more samples then evaluate their precision using
// crowdsourcing" loop.
func (c *Crowd) SamplePrecision(r *randx.Rand, items []*catalog.Item, preds []string, n int) (float64, int, error) {
	if len(items) != len(preds) {
		return 0, 0, errors.New("crowd: items/preds length mismatch")
	}
	if len(items) == 0 {
		return 1, 0, nil
	}
	idx := r.Sample(len(items), n)
	correct := 0
	for _, i := range idx {
		ok, err := c.VerifyPair(items[i], preds[i])
		if err != nil {
			return 0, 0, err
		}
		if ok {
			correct++
		}
	}
	return float64(correct) / float64(len(idx)), len(idx), nil
}

// ---------------------------------------------------------------------------
// Analysts
// ---------------------------------------------------------------------------

// Analyst simulates a domain analyst: a single high-accuracy oracle whose
// interactions are metered in actions (a proxy for the §5.1 wall-clock
// minutes: every shown candidate, verified pair or written rule is one
// action).
type Analyst struct {
	Name     string
	accuracy float64
	rng      *randx.Rand
	actions  int
}

// NewAnalyst creates an analyst with the given answer accuracy (0.97 is the
// default when accuracy is 0).
func NewAnalyst(name string, seed uint64, accuracy float64) *Analyst {
	if accuracy == 0 {
		accuracy = 0.97
	}
	return &Analyst{Name: name, accuracy: accuracy, rng: randx.New(seed).Split("analyst-" + name)}
}

// Actions returns the number of metered interactions so far.
func (a *Analyst) Actions() int { return a.actions }

// Verify answers a boolean question with the analyst's accuracy.
func (a *Analyst) Verify(truth bool) bool {
	a.actions++
	if a.rng.Bool(a.accuracy) {
		return truth
	}
	return !truth
}

// VerifyPair checks a classification pair against ground truth.
func (a *Analyst) VerifyPair(it *catalog.Item, predicted string) bool {
	return a.Verify(it.TrueType == predicted)
}

// Label returns the analyst's label for an item.
func (a *Analyst) Label(it *catalog.Item, types []string) string {
	a.actions++
	if a.rng.Bool(a.accuracy) || len(types) == 0 {
		return it.TrueType
	}
	return types[a.rng.Intn(len(types))]
}
